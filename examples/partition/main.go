// Partition demonstration: a 7-node cluster is cut 3|4 for ten periods
// and heals. While the cut is up the minority side (3 nodes < f+1 = 4)
// cannot assemble any round quorum, so its clocks free-run on hardware
// drift and the cluster-wide skew climbs past the full-mesh bound. The
// moment the cut heals, the majority's next relay re-synchronizes the
// minority within a single round.
//
// The cut is ordinary Spec data (Partitions), so the whole experiment is
// one public-API Run; the skew series retained by WithKeepSeries tells
// the story. The same churn composes with any topology — try
// WithTopology("wan:4") or `syncsim -run -topology wan:4`.
//
//	go run ./examples/partition
package main

import (
	"context"
	"fmt"

	"optsync"
)

func main() {
	params := optsync.Params{
		N: 7, F: 3, Variant: optsync.Auth,
		Rho:  optsync.Rho(1e-4),
		DMin: 0.002, DMax: 0.010,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()

	const (
		cutAt  = 10.0
		healAt = 20.0
	)
	res, err := optsync.Run(context.Background(), optsync.Spec{
		Algo: optsync.AlgoAuth, Params: params,
		Attack:  optsync.AttackNone,
		Horizon: 30, SampleEvery: 1.0,
		Seed: 7,
	},
		optsync.WithPartitions(optsync.Partition{At: cutAt, Heal: healAt, LeftSize: 3}),
		optsync.WithKeepSeries(),
	)
	if err != nil {
		panic(err)
	}

	fmt.Printf("nodes {0,1,2} | {3,4,5,6} partitioned during [%.0fs, %.0fs)\n\n", cutAt, healAt)
	fmt.Println("  t(s)   skew (s)")
	for _, s := range res.Series {
		marker := ""
		switch {
		case s.T >= cutAt && s.T < cutAt+1:
			marker = "   <- partition"
		case s.T >= healAt && s.T < healAt+1:
			marker = "   <- heal"
		}
		fmt.Printf("%6.1f  %.6f%s\n", s.T, s.Skew, marker)
	}

	var worst, after float64
	for _, s := range res.Series {
		if s.T >= cutAt && s.T < healAt && s.Skew > worst {
			worst = s.Skew
		}
		if s.T >= healAt+2*params.Period && s.Skew > after {
			after = s.Skew
		}
	}
	fmt.Printf("\nworst skew while cut:     %.6f s (mesh bound %.6f s)\n", worst, res.SkewBound)
	fmt.Printf("steady skew after heal:   %.6f s — reintegrated by the relay step\n", after)
}
