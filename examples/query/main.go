// Query: record a run as a columnar trace lake and mine it with
// predicate-pushdown queries — no full-stream replay required. The lake
// stores events as per-type column blocks behind a footer index, so a
// typed, time-bounded query decodes only the blocks whose bounds
// intersect it; everything else is pruned unread. Selective replays
// rebuild collector aggregates from just the matching slice. This is
// the workflow behind `syncsim -run ... -trace run.lake` + `syncsim
// query`, in library form. Scans decode blocks on a parallel worker
// pool (-workers; 0 = one per core) with output identical at every
// worker count.
//
//	go run ./examples/query [-workers N]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"optsync"
)

func main() {
	workers := flag.Int("workers", 0, "decode workers per scan (0 = one per core, 1 = serial)")
	flag.Parse()
	params := optsync.Params{
		N: 7, F: 3, Variant: optsync.Auth,
		Rho:  optsync.Rho(1e-4),
		DMin: 0.002, DMax: 0.010,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	spec := optsync.Spec{
		Algo: optsync.AlgoAuth, Params: params,
		FaultyCount: params.F, Attack: optsync.AttackSilent,
		Horizon: 30, Seed: 7,
	}

	// 1. Record the run straight into a lake: the writer is a probe, so
	//    there is no intermediate row trace to convert.
	var img bytes.Buffer
	lw := optsync.NewLakeWriter(&img)
	if _, err := optsync.Run(context.Background(), spec, optsync.WithLakeTrace(lw)); err != nil {
		fail(err)
	}
	path := filepath.Join(os.TempDir(), "example-run.lake")
	if err := os.WriteFile(path, img.Bytes(), 0o644); err != nil {
		fail(err)
	}
	defer os.Remove(path)
	fmt.Printf("recorded %d events into %s (%d bytes)\n\n", lw.Events(), path, img.Len())

	// 2. A typed, time-bounded query: skew samples from the middle third
	//    of the run. The scan stats show the pushdown working — blocks
	//    whose type or time bounds miss the query are never decoded.
	q := optsync.LakeQuery{}.
		WithTypes(optsync.EventSkewSample).
		WithTimeRange(10, 20).
		WithWorkers(*workers)
	worst := 0.0
	st, err := optsync.QueryLake(path, q, func(ev optsync.Event) error {
		if ev.Value > worst {
			worst = ev.Value
		}
		return nil
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("skew samples in t=[10,20]: %d matched, worst %.6fs\n", st.EventsMatched, worst)
	fmt.Printf("pushdown: %d/%d blocks pruned unread, %d decoded\n\n",
		st.BlocksPruned, st.BlocksTotal, st.BlocksScanned)

	// 3. Per-node forensics: everything node 3 sent or received in round
	//    5 — the "what did this node see" query that a row trace answers
	//    only by scanning front to back.
	msgs := 0
	nq := optsync.LakeQuery{}.WithNode(3).WithRound(5).WithWorkers(*workers)
	if _, err := optsync.QueryLake(path, nq, func(ev optsync.Event) error {
		msgs++
		return nil
	}); err != nil {
		fail(err)
	}
	fmt.Printf("node 3, round 5: %d events\n\n", msgs)

	// 4. Selective replay: rebuild skew aggregates from only the second
	//    half of the run by streaming the matching slice through a fresh
	//    collector — the same collector machinery a live run uses.
	late := optsync.NewSkewCollector()
	n, err := optsync.ReplayLake(path, optsync.LakeQuery{}.WithTimeRange(15, 30), late)
	if err != nil {
		fail(err)
	}
	fmt.Printf("late-window replay: %d events -> skew p95 %.6fs, max %.6fs\n\n",
		n, late.P95(), late.Max())

	// 5. Footer-only counting: when every admitted block is fully
	//    covered by the query bounds (a whole-lake count always is),
	//    Stats answers from the footer index and decodes nothing.
	l, err := optsync.OpenLake(path)
	if err != nil {
		fail(err)
	}
	defer l.Close()
	fst, err := l.Stats(optsync.LakeQuery{})
	if err != nil {
		fail(err)
	}
	fmt.Printf("footer-only count: %d events across %d blocks, %d rows decoded\n",
		fst.EventsMatched, fst.BlocksCovered, fst.RowsDecoded)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "query example:", err)
	os.Exit(1)
}
