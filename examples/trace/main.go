// Trace: observe a run through the composable probe API instead of
// retained series — attach streaming collectors (O(1) memory skew
// quantiles, per-round spreads, traffic counters), record the full typed
// event trace, then replay the trace through fresh collectors and verify
// the aggregates come back bit-identical. This is the workflow behind
// `syncsim -run ... -trace f` + `syncsim trace -in f`, in library form.
//
//	go run ./examples/trace
package main

import (
	"bytes"
	"context"
	"fmt"
	"reflect"

	"optsync"
)

func main() {
	params := optsync.Params{
		N: 7, F: 3, Variant: optsync.Auth,
		Rho:  optsync.Rho(1e-4),
		DMin: 0.002, DMax: 0.010,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	spec := optsync.Spec{
		Algo: optsync.AlgoAuth, Params: params,
		FaultyCount: params.F, Attack: optsync.AttackSilent,
		Horizon: 20, Seed: 7,
		// A scheduled partition makes cut/heal markers show up in the
		// trace alongside messages, pulses, boots, and skew samples.
		Partitions: []optsync.Partition{{At: 8, Heal: 12, LeftSize: 2}},
	}

	// 1. Observe the run three ways at once: a bounded-memory skew
	//    collector, a traffic collector, and a binary trace of every
	//    event — plus an ad-hoc probe counting partition markers.
	skew := optsync.NewSkewCollector()
	msgs := optsync.NewMsgCollector()
	var trace bytes.Buffer
	tw := optsync.NewTraceWriter(&trace, optsync.TraceBinary)
	marks := 0
	res, err := optsync.Run(context.Background(), spec,
		optsync.WithCollector(skew),
		optsync.WithCollector(msgs),
		optsync.WithTrace(tw),
		optsync.WithProbe(optsync.ProbeFunc(func(optsync.Event) { marks++ }),
			optsync.EventPartitionCut, optsync.EventPartitionHeal),
	)
	if err != nil {
		panic(err)
	}

	fmt.Printf("max skew %.6fs (bound %.6fs), p50 %.6fs, p95 %.6fs — no series retained\n",
		res.MaxSkew, res.SkewBound, skew.P50(), skew.P95())
	fmt.Printf("traffic: %d sent, %d delivered, %d offline drops, %d link drops\n",
		msgs.Sent(), msgs.Delivered(), res.DroppedOffline, res.DroppedLink)
	fmt.Printf("partition markers seen: %d (cut@8s, heal@12s)\n", marks)
	fmt.Printf("trace: %d events in %d bytes (binary framing)\n\n", tw.Events(), trace.Len())

	// 2. Replay the trace through fresh collectors: same event stream,
	//    same aggregates, bit for bit.
	skew2, msgs2 := optsync.NewSkewCollector(), optsync.NewMsgCollector()
	n, err := optsync.ReplayTrace(bytes.NewReader(trace.Bytes()), skew2, msgs2)
	if err != nil {
		panic(err)
	}
	same := reflect.DeepEqual(skew.Aggregate(), skew2.Aggregate()) &&
		reflect.DeepEqual(msgs.Aggregate(), msgs2.Aggregate())
	fmt.Printf("replayed %d events: aggregates bit-identical = %v\n", n, same)
	for _, s := range skew2.Aggregate() {
		fmt.Printf("  skew %-10s %.6g\n", s.Key, s.Value)
	}
}
