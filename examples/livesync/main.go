// Live synchronization: the same AuthProtocol that runs on the simulator
// runs here in real time over goroutines and channels, with synthetic
// per-node clock drift (1%!) and 20-50 ms message delays. Watch four nodes
// pull their clocks together four times a second for three wall-clock
// seconds.
//
// This example deliberately stays on the low-level rt substrate beneath
// the public optsync package: it runs in wall-clock time over goroutines,
// not in the deterministic simulator the Spec/Run API drives.
//
//	go run ./examples/livesync
package main

import (
	"fmt"
	"time"

	"optsync/internal/clock"
	"optsync/internal/core"
	"optsync/internal/core/bounds"
	"optsync/internal/node"
	"optsync/internal/rt"
)

func main() {
	params := bounds.Params{
		N: 4, F: 1, Variant: bounds.Auth,
		Rho:  clock.Rho(0.01), // 1% drift: ~10 ms divergence per second
		DMin: 0.020, DMax: 0.050,
		Period:      0.25,
		InitialSkew: 0.02,
	}.WithDefaults()
	cfg := core.ConfigFromBounds(params)

	cluster := rt.New(rt.Config{
		N: params.N, F: params.F, Seed: 99,
		Rho:       params.Rho,
		MaxOffset: params.InitialSkew,
		DelayMin:  20 * time.Millisecond,
		DelayMax:  50 * time.Millisecond,
		Protocols: func(i int) node.Protocol { return core.NewAuth(cfg) },
	})
	cluster.Start()
	defer cluster.Stop()

	ids := []node.ID{0, 1, 2, 3}
	fmt.Printf("running %d nodes in real time; skew bound %.1f ms\n\n",
		params.N, params.DmaxWithStart()*1e3)
	fmt.Println("  t(ms)   skew(ms)   clocks")
	start := time.Now()
	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
	maxSkew := 0.0
	for i := 0; i < 15; i++ {
		<-ticker.C
		skew := cluster.Skew(ids)
		if skew > maxSkew {
			maxSkew = skew
		}
		fmt.Printf("%7.0f  %8.2f   [%.3f %.3f %.3f %.3f]\n",
			time.Since(start).Seconds()*1e3, skew*1e3,
			cluster.ReadLogical(0), cluster.ReadLogical(1),
			cluster.ReadLogical(2), cluster.ReadLogical(3))
	}

	pulses := cluster.Pulses()
	rounds := 0
	for _, p := range pulses {
		if p.Round > rounds {
			rounds = p.Round
		}
	}
	fmt.Printf("\n%d resynchronization rounds completed in 3 s of wall time\n", rounds)
	fmt.Printf("max observed skew: %.2f ms (bound %.1f ms, plus sampling slack)\n",
		maxSkew*1e3, params.DmaxWithStart()*1e3)
	fmt.Println("\nWithout synchronization, 1% drift alone would separate these clocks")
	fmt.Println("by ~30 ms per second, growing forever; the protocol repeatedly pulls")
	fmt.Println("them back together and holds the skew under its bound.")
}
