// Fabric: a three-worker local fleet in one process. A coordinator
// serves a (faulty x dmax) campaign over loopback HTTP while three
// stateless workers lease cells, simulate them, and report back — one
// of them "crashes" (its context is cut) partway through to show that
// nothing is lost: its expired leases re-queue and the survivors finish
// the campaign. The final aggregates are byte-identical to what a
// single-process optsync.RunCampaign produces for the same sweep,
// because every cell is content-addressed and every simulation is
// deterministic.
//
//	go run ./examples/fabric                # first pass executes
//	go run ./examples/fabric                # second pass is all cache hits
//	rm -r fabric-store                      # start fresh
//
// The same topology works across real processes and machines:
//
//	syncsim serve -axis faulty=0,1,2,3 -axis dmax=0.006,0.010,0.014 \
//	        -seeds 3 -store ./fabric-store -addr :9190
//	syncsim work -coordinator http://COORDINATOR:9190   # on each box
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"optsync"
)

func main() {
	p := optsync.Params{
		N: 7, F: 3, Variant: optsync.Auth,
		Rho:  optsync.Rho(1e-4),
		DMin: 0.002, DMax: 0.010,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	c := optsync.Campaign{
		Name: "fabric-demo",
		Base: optsync.Spec{
			Algo: optsync.AlgoAuth, Params: p,
			Attack: optsync.AttackSilent, Horizon: 12, Seed: 1,
		},
		Axes: []optsync.Axis{
			{Field: "faulty", Values: optsync.Ints(0, 1, 2, 3)},
			{Field: "dmax", Values: optsync.Floats(0.006, 0.010, 0.014)},
		},
		Seeds: 3,
	}

	store, err := optsync.OpenStore("fabric-store")
	if err != nil {
		panic(err)
	}

	// Coordinator: binds loopback, hands the bound address to the
	// workers through the Ready hook, compacts the store on exit.
	ready := make(chan string, 1)
	type served struct {
		report *optsync.CampaignReport
		err    error
	}
	done := make(chan served, 1)
	go func() {
		report, err := optsync.ServeCampaign(context.Background(), c, store,
			optsync.FabricServeOptions{
				ServerOptions: optsync.FabricServerOptions{
					LeaseTTL:   2 * time.Second, // crashed leases re-queue fast
					LeaseBatch: 2,
					Progress: func(done, total int) {
						fmt.Fprintf(os.Stderr, "\rcoordinator: %d/%d cells settled", done, total)
					},
				},
				Ready:         func(addr string) { ready <- "http://" + addr },
				Linger:        200 * time.Millisecond,
				CompactOnExit: true,
			})
		done <- served{report, err}
	}()
	url := <-ready

	// Three workers; worker 0 is doomed — its context dies after one
	// second, mid-campaign, like a spot instance being reclaimed.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		ctx := context.Background()
		if i == 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Second)
			defer cancel()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, err := optsync.RunWorker(ctx, url, optsync.FabricWorkerOptions{
				Name:         fmt.Sprintf("worker-%d", i),
				Batch:        2,
				PollInterval: 50 * time.Millisecond,
			})
			fmt.Fprintf(os.Stderr, "\nworker-%d: %d cells executed (%v)", i, stats.Executed, err)
		}()
	}
	wg.Wait()

	res := <-done
	if res.err != nil {
		panic(res.err)
	}
	fmt.Fprintln(os.Stderr)
	fmt.Println(res.report.Table().Render())

	// The fleet's aggregates are exactly what one process would compute.
	single, err := optsync.RunCampaign(context.Background(), c, optsync.WithStore(store))
	if err != nil {
		panic(err)
	}
	fmt.Printf("fleet == single-process aggregates: %v (resume executed %d cells)\n",
		single.Table().CSV() == res.report.Table().CSV(), single.Executed)
}
