// Campaign: the declarative-sweep tour. Describes a (faulty x dmax)
// parameter space once, runs it through a persistent content-addressed
// store (kill the process and rerun — finished cells are never
// recomputed), prints the per-group mean/std/quantile aggregates, then
// bisects the dmax axis to find the widest delay bound that still meets
// the paper's agreement bound — without gridding the axis.
//
//	go run ./examples/campaign              # first pass executes
//	go run ./examples/campaign              # second pass is 100% cache hits
//	rm -r campaign-store                    # start fresh
package main

import (
	"context"
	"fmt"
	"os"

	"optsync"
)

func main() {
	p := optsync.Params{
		N: 7, F: 3, Variant: optsync.Auth,
		Rho:  optsync.Rho(1e-4),
		DMin: 0.002, DMax: 0.010,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()

	c := optsync.Campaign{
		Name: "resilience-vs-delay",
		Base: optsync.Spec{
			Algo: optsync.AlgoAuth, Params: p,
			Attack: optsync.AttackSilent, Horizon: 12, Seed: 1,
		},
		Axes: []optsync.Axis{
			{Field: "faulty", Values: optsync.Ints(0, 1, 2, 3)},
			{Field: "dmax", Values: optsync.Floats(0.006, 0.010, 0.014)},
		},
		Seeds: 3, // every cell averaged over 3 independent seeds
	}

	store, err := optsync.OpenStore("campaign-store")
	if err != nil {
		panic(err)
	}
	report, err := optsync.RunCampaign(context.Background(), c,
		optsync.WithStore(store),
		optsync.WithCampaignProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
		}))
	if err != nil {
		panic(err)
	}
	fmt.Fprintln(os.Stderr)
	fmt.Println(report.Table().Render())

	// Adaptive threshold search: how wide can dmax grow before the skew
	// bound breaks? Bisection settles O(log k) cells per group instead
	// of k, and shares the store with the campaign above.
	search, err := optsync.RunThresholdSearch(context.Background(), optsync.Campaign{
		Name: "dmax-threshold",
		Base: c.Base,
		Axes: []optsync.Axis{
			{Field: "dmax", Values: optsync.Floats(
				0.004, 0.006, 0.008, 0.010, 0.012, 0.014, 0.016, 0.018)},
		},
		Seeds: 2,
	}, optsync.ThresholdSearch{Axis: "dmax"}, optsync.WithStore(store))
	if err != nil {
		panic(err)
	}
	fmt.Println(search.Table().Render())
}
