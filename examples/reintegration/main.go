// Reintegration demonstration: a process that boots 12.4 seconds late with
// a wildly wrong clock (17 s off) joins a running cluster by passively
// accepting the first resynchronization round it observes — synchronized
// within one period, as the paper's integration section promises.
//
//	go run ./examples/reintegration
package main

import (
	"fmt"
	"math/rand"

	"optsync/internal/clock"
	"optsync/internal/core"
	"optsync/internal/core/bounds"
	"optsync/internal/network"
	"optsync/internal/node"
)

func main() {
	params := bounds.Params{
		N: 5, F: 2, Variant: bounds.Auth,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.010,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()

	const (
		joiner = 4
		joinAt = 12.4
	)
	cfg := core.ConfigFromBounds(params)
	cluster := node.NewCluster(node.Config{
		N: params.N, F: params.F, Seed: 11,
		Rho:   params.Rho,
		Delay: network.Uniform{Min: params.DMin, Max: params.DMax},
		Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
			offset := rng.Float64() * params.InitialSkew
			if i == joiner {
				offset = 17.0 // fresh from repair: clock 17 s wrong
			}
			return clock.NewHardware(offset, params.Rho,
				clock.RandomWalk{Rho: params.Rho, MinDur: 0.2, MaxDur: 1}, rng)
		},
		Protocols: func(i int) node.Protocol { return core.NewAuth(cfg) },
		StartAt:   map[int]float64{joiner: joinAt},
	})

	cluster.Start()
	everyone := []node.ID{0, 1, 2, 3, 4}
	established := []node.ID{0, 1, 2, 3}

	fmt.Printf("node %d boots at t=%.1fs with its clock %.0fs off\n\n", joiner, joinAt, 17.0)
	fmt.Println("  t(s)   skew(established)  skew(incl. joiner)  joiner clock")
	for t := 1.0; t <= 20; t++ {
		cluster.Run(t)
		joinerClock := "offline"
		skewAll := "-"
		if t >= joinAt {
			joinerClock = fmt.Sprintf("%.4f", cluster.ReadLogical(joiner))
			skewAll = fmt.Sprintf("%.6f", cluster.Skew(everyone))
		}
		fmt.Printf("%6.1f  %.6f           %-18s  %s\n",
			t, cluster.Skew(established), skewAll, joinerClock)
	}

	var firstPulse float64 = -1
	for _, rec := range cluster.Pulses {
		if rec.Node == joiner {
			firstPulse = rec.Real
			break
		}
	}
	fmt.Printf("\njoiner's first accepted round: t=%.3fs (%.3fs after boot)\n",
		firstPulse, firstPulse-joinAt)
	fmt.Printf("paper bound: one period ~ %.3fs — %v\n",
		params.Pmax()+params.Beta(), firstPulse-joinAt <= params.Pmax()+params.Beta())
	fmt.Printf("final skew including joiner: %.6fs (Dmax %.6fs)\n",
		cluster.Skew(everyone), params.DmaxWithStart())
}
