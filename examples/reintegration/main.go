// Reintegration demonstration: a process that boots 12.4 seconds late with
// a wildly wrong clock (17 s off) joins a running cluster by passively
// accepting the first resynchronization round it observes — synchronized
// within one period, as the paper's integration section promises.
//
// The late boot and the wrong clock are ordinary Spec fields (StartAt,
// ClockOffset), so the whole experiment is one public-API Run; the pulse
// log and skew series retained by WithKeepSeries tell the story.
//
//	go run ./examples/reintegration
package main

import (
	"context"
	"fmt"

	"optsync"
)

func main() {
	params := optsync.Params{
		N: 5, F: 2, Variant: optsync.Auth,
		Rho:  optsync.Rho(1e-4),
		DMin: 0.002, DMax: 0.010,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()

	const (
		joiner = 4
		joinAt = 12.4
	)
	res, err := optsync.Run(context.Background(), optsync.Spec{
		Algo: optsync.AlgoAuth, Params: params,
		Attack:  optsync.AttackNone,
		Horizon: 20, SampleEvery: 1.0,
		Seed:        11,
		StartAt:     map[int]float64{joiner: joinAt},
		ClockOffset: map[int]float64{joiner: 17.0}, // fresh from repair
	}, optsync.WithKeepSeries())
	if err != nil {
		panic(err)
	}

	fmt.Printf("node %d boots at t=%.1fs with its clock %.0fs off\n\n", joiner, joinAt, 17.0)
	fmt.Println("  t(s)   skew over booted nodes (s)")
	for _, s := range res.Series {
		marker := ""
		if s.T >= joinAt && s.T < joinAt+1 {
			marker = "   <- joiner boots"
		}
		fmt.Printf("%6.1f  %.6f%s\n", s.T, s.Skew, marker)
	}

	var firstPulse float64 = -1
	for _, rec := range res.Pulses {
		if rec.Node == joiner {
			firstPulse = rec.Real
			break
		}
	}
	bound := params.Pmax() + params.Beta()
	fmt.Printf("\njoiner's first accepted round: t=%.3fs (%.3fs after boot)\n",
		firstPulse, firstPulse-joinAt)
	fmt.Printf("paper bound: one period ~ %.3fs — %v\n", bound, firstPulse-joinAt <= bound)
	if n := len(res.Series); n > 0 {
		fmt.Printf("final skew including joiner: %.6fs (Dmax %.6fs)\n",
			res.Series[n-1].Skew, params.DmaxWithStart())
	}
}
