// Quickstart: synchronize 5 drifting clocks with the authenticated
// Srikanth-Toueg algorithm while 2 of them are Byzantine-silent, and watch
// the skew stay under the analytic bound.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"optsync/internal/adversary"
	"optsync/internal/clock"
	"optsync/internal/core"
	"optsync/internal/core/bounds"
	"optsync/internal/network"
	"optsync/internal/node"
)

func main() {
	// 1. Describe the deployment: 5 processes, up to 2 Byzantine
	//    (optimal for the authenticated algorithm: f = ceil(n/2)-1),
	//    quartz-grade drift, LAN-grade delays, one resync per second.
	params := bounds.Params{
		N: 5, F: 2, Variant: bounds.Auth,
		Rho:  clock.Rho(1e-4),    // rates within [1/1.0001, 1.0001]
		DMin: 0.002, DMax: 0.010, // delays within [2ms, 10ms]
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	if err := params.Validate(); err != nil {
		panic(err)
	}

	// 2. Build the cluster: drifting hardware clocks, a lossless network
	//    with adversary-chosen delays, HMAC signatures, and the protocol.
	cfg := core.ConfigFromBounds(params)
	cluster := node.NewCluster(node.Config{
		N: params.N, F: params.F, Seed: 42,
		Rho:   params.Rho,
		Delay: network.Uniform{Min: params.DMin, Max: params.DMax},
		Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
			offset := rng.Float64() * params.InitialSkew
			return clock.NewHardware(offset, params.Rho,
				clock.RandomWalk{Rho: params.Rho, MinDur: 0.2, MaxDur: 1}, rng)
		},
		Protocols: func(i int) node.Protocol {
			if i >= 3 {
				return adversary.Silent{} // nodes 3, 4 are faulty
			}
			return core.NewAuth(cfg)
		},
		Faulty: map[int]bool{3: true, 4: true},
	})

	// 3. Run 20 simulated seconds, sampling the skew among correct nodes.
	cluster.Start()
	correct := []node.ID{0, 1, 2}
	fmt.Printf("Dmax bound: %.4fs   acceptance-spread bound: %.4fs\n\n",
		params.DmaxWithStart(), params.Beta())
	fmt.Println("  t(s)   skew(s)    logical clocks")
	maxSkew := 0.0
	for t := 1.0; t <= 20; t++ {
		cluster.Run(t)
		skew := cluster.Skew(correct)
		if skew > maxSkew {
			maxSkew = skew
		}
		fmt.Printf("%6.1f  %.6f   [%.4f %.4f %.4f]\n", t, skew,
			cluster.ReadLogical(0), cluster.ReadLogical(1), cluster.ReadLogical(2))
	}

	fmt.Printf("\nmax skew %.6fs vs bound %.6fs — %s\n",
		maxSkew, params.DmaxWithStart(), verdict(maxSkew <= params.DmaxWithStart()))
	fmt.Printf("rounds accepted: %d pulses across %d correct nodes\n",
		len(cluster.Pulses), len(correct))
}

func verdict(ok bool) string {
	if ok {
		return "within the paper's bound"
	}
	return "BOUND VIOLATED"
}
