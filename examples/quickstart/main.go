// Quickstart: synchronize 5 drifting clocks with the authenticated
// Srikanth-Toueg algorithm while 2 of them are Byzantine-silent, and watch
// the skew stay under the analytic bound — all through the public optsync
// API: describe the run as a Spec, execute it with Run, read the Result.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"optsync"
)

func main() {
	// 1. Describe the deployment: 5 processes, up to 2 Byzantine
	//    (optimal for the authenticated algorithm: f = ceil(n/2)-1),
	//    quartz-grade drift, LAN-grade delays, one resync per second.
	params := optsync.Params{
		N: 5, F: 2, Variant: optsync.Auth,
		Rho:  optsync.Rho(1e-4),  // rates within [1/1.0001, 1.0001]
		DMin: 0.002, DMax: 0.010, // delays within [2ms, 10ms]
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	if err := params.Validate(); err != nil {
		panic(err)
	}

	// 2. Describe the experiment: the algorithm and the attack are
	//    registry names — the same strings a third-party extension would
	//    register under. The two highest-id nodes are silent from boot.
	spec := optsync.Spec{
		Algo: optsync.AlgoAuth, Params: params,
		FaultyCount: 2, Attack: optsync.AttackSilent,
		Horizon: 20, SampleEvery: 1.0,
		Seed: 42,
	}

	// 3. Run it. WithKeepSeries retains the skew trace for printing.
	res, err := optsync.Run(context.Background(), spec, optsync.WithKeepSeries())
	if err != nil {
		panic(err)
	}

	fmt.Printf("Dmax bound: %.4fs   acceptance-spread bound: %.4fs\n\n",
		params.DmaxWithStart(), params.Beta())
	fmt.Println("  t(s)   skew(s)")
	for _, s := range res.Series {
		fmt.Printf("%6.1f  %.6f\n", s.T, s.Skew)
	}

	fmt.Printf("\nmax skew %.6fs vs bound %.6fs — %s\n",
		res.MaxSkew, res.SkewBound, verdict(res.WithinSkew))
	fmt.Printf("rounds accepted: %d pulses across %d correct nodes\n",
		res.PulseCount, params.N-spec.FaultyCount)
}

func verdict(ok bool) string {
	if ok {
		return "within the paper's bound"
	}
	return "BOUND VIOLATED"
}
