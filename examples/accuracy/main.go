// Accuracy shoot-out: the paper's headline claim. Run the Srikanth-Toueg
// algorithms and the two prior-art baselines (interactive convergence CNV,
// fault-tolerant midpoint FTM) under the strongest accuracy attack each
// admits, and compare the long-run rate of the synchronized clocks against
// the hardware drift envelope.
//
// The four long runs are independent, so they go through RunBatch and
// execute in parallel — one worker per core.
//
//	go run ./examples/accuracy
package main

import (
	"context"
	"fmt"

	"optsync"
)

func main() {
	p := optsync.Params{
		N: 7, F: 2, Variant: optsync.Primitive, // f < n/3 so all four algorithms apply
		Rho:  optsync.Rho(1e-4),
		DMin: 0.002, DMax: 0.010,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	pAuth := p
	pAuth.Variant = optsync.Auth
	pAuth = pAuth.WithDefaults()

	type entry struct {
		algo   optsync.Algorithm
		params optsync.Params
		attack optsync.Attack
		note   string
	}
	runs := []entry{
		{optsync.AlgoAuth, pAuth, optsync.AttackEquivocate, "equivocating + stale evidence"},
		{optsync.AlgoPrim, p, optsync.AttackSilent, "silent faults (max tolerated)"},
		{optsync.AlgoCNV, p, optsync.AttackBias, "within-threshold biased reports"},
		{optsync.AlgoFTM, p, optsync.AttackBias, "within-threshold biased reports"},
	}

	specs := make([]optsync.Spec, len(runs))
	for i, r := range runs {
		specs[i] = optsync.Spec{
			Algo: r.algo, Params: r.params,
			FaultyCount: r.params.F, Attack: r.attack,
			Horizon: 120 * r.params.Period,
			Seed:    23,
		}
		if r.attack == optsync.AttackBias {
			specs[i].Bias = 3 * r.params.Dmax()
		}
	}

	results, err := optsync.RunBatch(context.Background(), specs)
	if err != nil {
		panic(err)
	}

	fmt.Printf("hardware drift bound rho = %g: honest clock rates within [%.6f, %.6f]\n\n",
		float64(p.Rho), p.Rho.MinRate(), p.Rho.MaxRate())
	fmt.Printf("%-14s %-32s %-10s %-22s %s\n", "algorithm", "attack", "rate", "allowed envelope", "verdict")
	for i, res := range results {
		verdict := "accuracy preserved"
		if !res.WithinEnvelope {
			verdict = "ACCURACY DESTROYED"
		}
		fmt.Printf("%-14s %-32s %-10.5f [%.5f, %.5f]     %s\n",
			runs[i].algo, runs[i].note, res.EnvHi, res.EnvBoundLo, res.EnvBoundHi, verdict)
	}

	fmt.Println()
	fmt.Println("The ST algorithms hold the paper's provable envelope under every")
	fmt.Println("within-resilience attack — optimal accuracy. CNV's egocentric mean")
	fmt.Println("is dragged ~f*Bias/n per round; FTM leaks only the correct-spread")
	fmt.Println("scale, but neither baseline can bound its rate by the hardware drift.")
}
