// Accuracy shoot-out: the paper's headline claim. Run the Srikanth-Toueg
// algorithms and the two prior-art baselines (interactive convergence CNV,
// fault-tolerant midpoint FTM) under the strongest accuracy attack each
// admits, and compare the long-run rate of the synchronized clocks against
// the hardware drift envelope.
//
//	go run ./examples/accuracy
package main

import (
	"fmt"

	"optsync/internal/clock"
	"optsync/internal/core/bounds"
	"optsync/internal/harness"
)

func main() {
	p := bounds.Params{
		N: 7, F: 2, Variant: bounds.Primitive, // f < n/3 so all four algorithms apply
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.010,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	pAuth := p
	pAuth.Variant = bounds.Auth
	pAuth = pAuth.WithDefaults()

	type entry struct {
		algo   harness.Algorithm
		params bounds.Params
		attack harness.Attack
		note   string
	}
	runs := []entry{
		{harness.AlgoAuth, pAuth, harness.AttackEquivocate, "equivocating + stale evidence"},
		{harness.AlgoPrim, p, harness.AttackSilent, "silent faults (max tolerated)"},
		{harness.AlgoCNV, p, harness.AttackBias, "within-threshold biased reports"},
		{harness.AlgoFTM, p, harness.AttackBias, "within-threshold biased reports"},
	}

	fmt.Printf("hardware drift bound rho = %g: honest clock rates within [%.6f, %.6f]\n\n",
		float64(p.Rho), p.Rho.MinRate(), p.Rho.MaxRate())
	fmt.Printf("%-14s %-32s %-10s %-22s %s\n", "algorithm", "attack", "rate", "allowed envelope", "verdict")
	for _, r := range runs {
		spec := harness.Spec{
			Algo: r.algo, Params: r.params,
			FaultyCount: r.params.F, Attack: r.attack,
			Horizon: 120 * r.params.Period,
			Seed:    23,
		}
		if r.attack == harness.AttackBias {
			spec.Bias = 3 * r.params.Dmax()
		}
		res := harness.Run(spec)
		verdict := "accuracy preserved"
		if !res.WithinEnvelope {
			verdict = "ACCURACY DESTROYED"
		}
		fmt.Printf("%-14s %-32s %-10.5f [%.5f, %.5f]     %s\n",
			r.algo, r.note, res.EnvHi, res.EnvBoundLo, res.EnvBoundHi, verdict)
	}

	fmt.Println()
	fmt.Println("The ST algorithms hold the paper's provable envelope under every")
	fmt.Println("within-resilience attack — optimal accuracy. CNV's egocentric mean")
	fmt.Println("is dragged ~f*Bias/n per round; FTM leaks only the correct-spread")
	fmt.Println("scale, but neither baseline can bound its rate by the hardware drift.")
}
