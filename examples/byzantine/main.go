// Byzantine attack demonstration: the same rush attack run twice against
// the authenticated algorithm — once within the resilience bound
// (f = ceil(n/2)-1, harmless) and once one fault beyond it (the coalition
// forges signature quorums and drives the cluster's clocks at 5x speed).
// Both runs go through the public optsync API.
//
//	go run ./examples/byzantine
package main

import (
	"context"
	"fmt"

	"optsync"
)

func main() {
	params := optsync.Params{
		N: 5, F: 2, Variant: optsync.Auth,
		Rho:  optsync.Rho(1e-4),
		DMin: 0.002, DMax: 0.010,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()

	fmt.Println("Rush attack: colluding faulty nodes broadcast signed round")
	fmt.Println("evidence every P/5 = 200ms, trying to drive resynchronization")
	fmt.Println("at 5x the legitimate pace.")
	fmt.Println()

	for _, faulty := range []int{params.F, params.F + 1} {
		res, err := optsync.Run(context.Background(), optsync.Spec{
			Algo: optsync.AlgoAuth, Params: params,
			FaultyCount: faulty, Attack: optsync.AttackRush,
			RushInterval: params.Period / 5,
			Horizon:      30 * params.Period,
			Seed:         7,
		})
		if err != nil {
			panic(err)
		}
		label := "WITHIN resilience"
		if faulty > params.F {
			label = "BEYOND resilience"
		}
		fmt.Printf("=== %s: %d faulty of n=%d (tolerance %d) ===\n",
			label, faulty, params.N, params.F)
		fmt.Printf("  clock rate:        %.4f (bound %.4f) %s\n",
			res.EnvHi, res.EnvBoundHi, verdict(res.EnvHi <= res.EnvBoundHi))
		fmt.Printf("  min pulse period:  %.4fs (bound %.4fs) %s\n",
			res.MinPeriod, res.PminBound, verdict(res.MinPeriod >= res.PminBound-1e-9))
		fmt.Printf("  max skew:          %.4fs (bound %.4fs) %s\n",
			res.MaxSkew, res.SkewBound, verdict(res.WithinSkew))
		fmt.Println()
	}

	fmt.Println("With f+1 colluders the coalition alone assembles the f+1-signature")
	fmt.Println("quorum: unforgeability is gone, rounds fire at the adversary's pace,")
	fmt.Println("and accuracy (the paper's optimality claim) is destroyed. Agreement")
	fmt.Println("survives — the relay step still spreads every forged round to all")
	fmt.Println("correct nodes within one delay. This is exactly the paper's")
	fmt.Println("resilience boundary: f = ceil(n/2)-1 is optimal with signatures.")
}

func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "*** VIOLATED ***"
}
