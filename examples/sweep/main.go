// Sweep: the composable-API tour. Registers a custom attack through the
// public extension point (no fork of the harness needed), fans a
// (n x attack) scenario grid out over all cores with RunBatch, averages
// each cell over 3 seeds, reports progress, and streams every result to
// a CSV sink — machine-readable output ready for a notebook.
//
//	go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"

	"optsync"
)

// deafAfter is a custom faulty behaviour: the node runs the protocol
// correctly but stops processing input at a deadline — a receiver whose
// NIC died. It wraps whatever correct protocol the spec selects, so it
// works against every registered algorithm.
type deafAfter struct {
	inner optsync.Protocol
	at    float64
}

func (d *deafAfter) Start(env optsync.Env) { d.inner.Start(env) }

func (d *deafAfter) Deliver(env optsync.Env, from optsync.ID, msg optsync.Message) {
	if env.RealTime() >= d.at {
		return // deaf: input is dropped, output keeps flowing
	}
	d.inner.Deliver(env, from, msg)
}

func init() {
	// Registration is a one-liner; "deaf-mid" becomes addressable from
	// any Spec, the syncsim CLI included.
	optsync.RegisterAttack("deaf-mid", func(spec optsync.Spec, _ optsync.AttackEnv) (optsync.Protocol, error) {
		inner, err := optsync.NewProtocol(spec)
		if err != nil {
			return nil, err
		}
		return &deafAfter{inner: inner, at: spec.Horizon / 2}, nil
	})
}

func main() {
	var specs []optsync.Spec
	for _, n := range []int{5, 9, 15} {
		p := optsync.Params{
			N: n, F: optsync.Auth.MaxFaults(n), Variant: optsync.Auth,
			Rho:  optsync.Rho(1e-4),
			DMin: 0.002, DMax: 0.010,
			Period:      1.0,
			InitialSkew: 0.005,
		}.WithDefaults()
		for _, attack := range []optsync.Attack{optsync.AttackSilent, "deaf-mid"} {
			specs = append(specs, optsync.Spec{
				Name: fmt.Sprintf("n%d-%s", n, attack),
				Algo: optsync.AlgoAuth, Params: p,
				FaultyCount: p.F, Attack: attack,
				Horizon: 15, Seed: int64(n),
			})
		}
	}

	results, err := optsync.RunBatch(context.Background(), specs,
		optsync.WithWorkers(runtime.NumCPU()),
		optsync.WithSeeds(3), // each cell averaged over 3 seeds
		optsync.WithSink(optsync.NewCSVSink(os.Stdout)),
		optsync.WithProgress(func(ev optsync.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "\r%d/%d runs", ev.Completed, ev.Total)
		}),
	)
	if err != nil {
		panic(err)
	}
	fmt.Fprintln(os.Stderr)

	violations := 0
	for _, res := range results {
		if !res.WithinSkew {
			violations++
		}
	}
	fmt.Fprintf(os.Stderr, "%d runs, %d skew-bound violations (deafness is benign: "+
		"a deaf node only hurts itself)\n", len(results), violations)
}
