// Consensus over synchronized clocks: the application the paper motivates.
// The pulse protocol turns drifting clocks into lock-step rounds; classic
// Dolev-Strong authenticated broadcast then runs on top, unchanged. Two
// scenarios: an honest dealer (everyone decides its value) and an
// equivocating Byzantine dealer (everyone decides the same default).
//
// This example deliberately stays on the low-level cluster API beneath
// the public optsync package: it wires an application protocol (lockstep
// Dolev-Strong) next to the clock-sync protocol on the same nodes, which
// is finer-grained composition than a measurement Spec describes.
//
//	go run ./examples/consensus
package main

import (
	"fmt"
	"math/rand"

	"optsync/internal/clock"
	"optsync/internal/core"
	"optsync/internal/core/bounds"
	"optsync/internal/lockstep"
	"optsync/internal/network"
	"optsync/internal/node"
)

func main() {
	params := bounds.Params{
		N: 5, F: 2, Variant: bounds.Auth,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.010,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	fmt.Printf("lock-step guarantee: pulses %.3fs apart >= skew+dmax = %.3fs\n\n",
		params.Pmin(), lockstep.MinPeriod(params))

	fmt.Println("=== honest dealer (node 0 broadcasts 42) ===")
	runScenario(params, false)
	fmt.Println()
	fmt.Println("=== equivocating dealer (7 to half, 8 to the other half) ===")
	runScenario(params, true)
	fmt.Println()
	fmt.Println("Consistency holds in both runs: the synchronized clocks simulate")
	fmt.Println("the synchronous rounds Dolev-Strong needs, despite 1e-4 drift and")
	fmt.Println("2-10 ms delays underneath.")
}

func runScenario(params bounds.Params, equivocate bool) {
	cfg := core.ConfigFromBounds(params)
	apps := make([]*lockstep.DolevStrong, params.N)
	cluster := node.NewCluster(node.Config{
		N: params.N, F: params.F, Seed: 3,
		Rho:   params.Rho,
		Delay: network.Uniform{Min: params.DMin, Max: params.DMax},
		Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
			return clock.NewHardware(rng.Float64()*params.InitialSkew, params.Rho,
				clock.RandomWalk{Rho: params.Rho, MinDur: 0.2, MaxDur: 1}, rng)
		},
		Protocols: func(i int) node.Protocol {
			if i == 0 && equivocate {
				return &twoFacedDealer{sync: core.NewAuth(cfg)}
			}
			apps[i] = &lockstep.DolevStrong{Dealer: 0, Value: 42, F: params.F, Default: 0}
			return lockstep.New(cfg, apps[i])
		},
		Faulty: map[int]bool{0: equivocate},
	})
	cluster.Start()
	cluster.Run(float64(params.F+5) * params.Period)

	for i, app := range apps {
		if app == nil {
			fmt.Printf("  node %d: (Byzantine dealer)\n", i)
			continue
		}
		v, ok := app.Decided()
		fmt.Printf("  node %d: decided=%v value=%d\n", i, ok, v)
	}
}

// twoFacedDealer runs the synchronizer honestly but equivocates at the
// Dolev-Strong layer: different signed values to different halves.
type twoFacedDealer struct {
	sync *core.AuthProtocol
	sent bool
}

func (d *twoFacedDealer) Start(env node.Env) {
	d.sync.OnAccept = func(k int) { d.onPulse(env, k) }
	d.sync.Start(env)
}

func (d *twoFacedDealer) Deliver(env node.Env, from node.ID, msg node.Message) {
	if msg.Kind == lockstep.KindApp {
		return
	}
	d.sync.Deliver(env, from, msg)
}

func (d *twoFacedDealer) onPulse(env node.Env, k int) {
	if d.sent {
		return
	}
	d.sent = true
	for _, value := range []uint64{7, 8} {
		msg := lockstep.Envelope(k, lockstep.NewDSMessage(env, env.ID(), value))
		for to := 0; to < env.N(); to++ {
			if (to%2 == 0) == (value == 7) {
				env.Send(to, msg)
			}
		}
	}
}
