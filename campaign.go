package optsync

import (
	"context"

	"optsync/internal/campaign"
	"optsync/internal/harness"
)

// The campaign vocabulary, re-exported as aliases so values flow between
// this package and extension code without conversion.
type (
	// Campaign declares a parameter-space sweep: a base Spec plus Axes
	// combined as a grid (or a seeded random sample), replicated over
	// consecutive seeds.
	Campaign = campaign.Campaign
	// Axis sweeps one spec field over a list of textual values; see
	// AxisFields for the vocabulary and Ints/Floats/Strings for typed
	// construction.
	Axis = campaign.Axis
	// CampaignCell is one concrete keyed run of an expanded campaign.
	CampaignCell = campaign.Cell
	// CampaignReport carries execution accounting and per-group
	// aggregates; render with its Table method or marshal it as JSON.
	CampaignReport = campaign.Report
	// CampaignGroup aggregates the seed replicates of one non-seed
	// parameter point (mean/std/quantiles via the analysis package).
	CampaignGroup = campaign.Group
	// Store is the content-addressed on-disk result store keyed by
	// SpecKey; campaigns run against a store are resumable by
	// construction.
	Store = campaign.Store
	// ThresholdSearch bisects one campaign axis per group to find the
	// last passing value without gridding the axis.
	ThresholdSearch = campaign.Search
	// SearchReport carries the per-group breaking points.
	SearchReport = campaign.SearchReport
	// SearchGroup is one group's breaking point bracket.
	SearchGroup = campaign.SearchGroup
)

// OpenStore opens or creates a campaign result store directory.
func OpenStore(dir string) (*Store, error) { return campaign.Open(dir) }

// SpecKey returns a spec's stable content address: the hex SHA-256 of
// its canonical form (defaults applied, presentation-only fields
// cleared). Two specs with equal keys describe the same computation.
func SpecKey(spec Spec) (string, error) { return harness.SpecKey(spec) }

// CanonicalSpec returns the canonical form a spec is keyed by.
func CanonicalSpec(spec Spec) Spec { return harness.CanonicalSpec(spec) }

// AxisFields returns the sweepable axis field names, sorted.
func AxisFields() []string { return campaign.Fields() }

// Ints renders integer axis values.
func Ints(vs ...int) []string { return campaign.Ints(vs...) }

// Floats renders numeric axis values with full round-trip precision.
func Floats(vs ...float64) []string { return campaign.Floats(vs...) }

// Strings copies string axis values, for symmetry with Ints and Floats.
func Strings(vs ...string) []string { return campaign.Strings(vs...) }

// CampaignOption configures RunCampaign and RunThresholdSearch. Campaign
// execution has its own option type: batch options like WithSeeds do not
// apply (replication is the campaign's Seeds field), and campaign
// options like stores make no sense on single runs.
type CampaignOption func(*campaignConfig)

type campaignConfig struct {
	opts  campaign.Options
	sinks []Sink
}

// WithStore persists completed cells in s and serves repeats from it; a
// campaign interrupted and re-run against the same store skips every
// already-completed cell.
func WithStore(s *Store) CampaignOption {
	return func(c *campaignConfig) { c.opts.Store = s }
}

// WithCampaignWorkers bounds the worker pool for cell execution (<= 0:
// the package default, see SetDefaultWorkers).
func WithCampaignWorkers(n int) CampaignOption {
	return func(c *campaignConfig) { c.opts.Workers = n }
}

// WithRecompute ignores cached cells: everything executes again and the
// fresh results overwrite the store.
func WithRecompute() CampaignOption {
	return func(c *campaignConfig) { c.opts.Recompute = true }
}

// WithCampaignProgress installs a callback invoked serially after every
// settled cell (cache hit or executed run). It must not block.
func WithCampaignProgress(fn func(done, total int)) CampaignOption {
	return func(c *campaignConfig) { c.opts.Progress = fn }
}

// WithCampaignSink streams every cell Result to s in cell order after
// the campaign settles, then flushes. May be given multiple times.
func WithCampaignSink(s Sink) CampaignOption {
	return func(c *campaignConfig) { c.sinks = append(c.sinks, s) }
}

func newCampaignConfig(opts []CampaignOption) *campaignConfig {
	cfg := &campaignConfig{}
	for _, opt := range opts {
		opt(cfg)
	}
	return cfg
}

// drain streams the report's per-cell results to the registered sinks in
// cell order and flushes them, propagating the first error.
func (c *campaignConfig) drain(results []Result) error {
	var firstErr error
	for _, s := range c.sinks {
		for _, res := range results {
			if err := s.Write(res); err != nil {
				firstErr = err
				break
			}
		}
	}
	for _, s := range c.sinks {
		if err := s.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// RunCampaign expands the campaign, executes every cell a store has not
// already answered, and aggregates the results per non-seed group. The
// report is deterministic in the campaign alone, so re-running against
// the same store yields byte-identical aggregates with zero executions.
func RunCampaign(ctx context.Context, c Campaign, opts ...CampaignOption) (*CampaignReport, error) {
	cfg := newCampaignConfig(opts)
	report, err := campaign.Run(ctx, c, cfg.opts)
	if err != nil {
		return nil, err
	}
	return report, cfg.drain(report.Results)
}

// RunThresholdSearch bisects the campaign's search axis per group
// instead of running the full grid: under a monotone pass/fail predicate
// (axis values ordered easiest to hardest) it finds the same breaking
// point as the exhaustive grid in O(log k) evaluations per group.
// Evaluated cells share the campaign store, so searches and full
// campaigns reuse each other's work. Per-cell sinks receive nothing: a
// search settles only the cells bisection touches.
func RunThresholdSearch(ctx context.Context, c Campaign, s ThresholdSearch, opts ...CampaignOption) (*SearchReport, error) {
	cfg := newCampaignConfig(opts)
	return campaign.RunSearch(ctx, c, s, cfg.opts)
}
