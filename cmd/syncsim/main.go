// Command syncsim runs the reproduction experiments for Srikanth & Toueg,
// "Optimal Clock Synchronization" (PODC 1985), through the public optsync
// API.
//
// Usage:
//
//	syncsim -list             list experiments
//	syncsim -exp T1           run one experiment and print its tables
//	syncsim -exp all          run the full suite (default)
//	syncsim -exp T1 -csv      emit CSV instead of aligned tables
//	syncsim -exp T1 -json     emit JSON instead of aligned tables
//	syncsim -exp all -workers 8   fan experiment runs out over 8 workers
//
// A custom single run is also available:
//
//	syncsim -run -algo st-auth -n 7 -f 3 -rho 1e-4 -dmax 0.01 \
//	        -period 1 -horizon 30 -attack silent -seed 1 -json
//
// Custom runs take a network topology and scheduled partitions:
//
//	syncsim -run -n 16 -topology wan:4
//	syncsim -run -n 7 -horizon 35 -partition 10:20:3
//
// The campaign subcommand expands declarative parameter-space sweeps
// over a persistent, content-addressed result store (see campaign.go):
//
//	syncsim campaign -axis faulty=0,1,2 -axis dmax=0.008,0.01 \
//	        -seeds 5 -store ./results
//	syncsim campaign -axis dmax=0.004,0.008,0.012,0.016 \
//	        -store ./results -search dmax
//
// Campaigns also run distributed: the serve subcommand starts a
// coordinator that leases cells to stateless work processes over HTTP
// and stores their reports in the shared result store (see fabric.go).
// Workers can be killed and restarted freely; the coordinator reclaims
// expired leases, and SIGINT on either side shuts down gracefully with
// all settled cells durable:
//
//	syncsim serve -axis faulty=0,1,2 -seeds 5 -store ./results
//	syncsim work -coordinator http://127.0.0.1:9190
//	syncsim work -coordinator http://127.0.0.1:9190   # as many as you like
//
// Custom runs can record their full typed event trace (messages, pulses,
// resyncs, boots, partition markers, skew samples); the trace subcommand
// replays a recorded trace through the streaming collectors and prints
// aggregates identical to the live run's, and converts between the three
// encodings — JSONL, binary frames, and the columnar trace lake — with
// -out (see trace.go):
//
//	syncsim -run -n 7 -horizon 30 -trace run.bin
//	syncsim trace -in run.bin
//	syncsim trace -in run.bin -json
//	syncsim trace -in run.bin -out run.lake
//
// The query subcommand runs typed, node-, time-, and round-bounded
// queries against a lake without replaying the whole stream — the footer
// index prunes non-matching column blocks (see query.go):
//
//	syncsim -run -n 7 -horizon 30 -trace run.lake
//	syncsim query -in run.lake -type skew_sample -from 2.5 -to 9.0
//	syncsim query -in run.lake -node 3 -csv
//	syncsim query -in run.lake -type pulse -stats
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"optsync"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "syncsim:", err)
		os.Exit(1)
	}
}

// algoUsage and attackUsage derive the flag help from the registry, so
// protocols and attacks registered by linked-in packages show up too.
func algoUsage() string {
	names := make([]string, 0, 8)
	for _, a := range optsync.Protocols() {
		names = append(names, string(a))
	}
	return "algorithm: " + strings.Join(names, " | ")
}

func attackUsage() string {
	names := make([]string, 0, 8)
	for _, a := range optsync.Attacks() {
		names = append(names, string(a))
	}
	return "attack: " + strings.Join(names, "|")
}

func topologyUsage() string {
	return "network topology: " + strings.Join(optsync.Topologies(), "[:arg] | ") +
		"[:arg] (e.g. wan:4 = 4 WAN regions, ring:6 = degree-6 circulant)"
}

// parsePartitions parses repeated -partition values "at:heal:leftSize"
// (heal 0 = never heals) through the shared window parser.
func parsePartitions(specs []string) ([]optsync.Partition, error) {
	out := make([]optsync.Partition, 0, len(specs))
	for _, s := range specs {
		p, err := optsync.ParsePartition(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// stringList collects a repeatable flag.
type stringList []string

func (l *stringList) String() string     { return strings.Join(*l, ",") }
func (l *stringList) Set(v string) error { *l = append(*l, v); return nil }

// specFlags registers the base-spec flag family shared by custom runs
// and campaigns on a flag set.
type specFlags struct {
	algo            *string
	n, f, faulty    *int
	rho             *float64
	dmin, dmax      *float64
	period, horizon *float64
	attack          *string
	seed            *int64
	topology        *string
	shards          *int
	partitions      stringList
}

func addSpecFlags(fs *flag.FlagSet) *specFlags {
	sf := &specFlags{
		algo:     fs.String("algo", "st-auth", algoUsage()),
		n:        fs.Int("n", 7, "number of processes"),
		f:        fs.Int("f", -1, "fault bound (-1 = maximum for the algorithm)"),
		faulty:   fs.Int("faulty", -1, "actual faulty count (-1 = same as -f)"),
		rho:      fs.Float64("rho", 1e-4, "hardware drift bound"),
		dmin:     fs.Float64("dmin", 0.002, "min message delay (s)"),
		dmax:     fs.Float64("dmax", 0.01, "max message delay (s)"),
		period:   fs.Float64("period", 1, "resynchronization period P (s)"),
		horizon:  fs.Float64("horizon", 30, "simulated duration (s)"),
		attack:   fs.String("attack", "silent", attackUsage()),
		seed:     fs.Int64("seed", 1, "simulation seed"),
		topology: fs.String("topology", "", topologyUsage()),
		shards: fs.Int("shards", 0,
			"parallel engine shard workers (0 = auto: serial below n=1024, else up to min(GOMAXPROCS,8); 1 = force serial; results are bit-identical at every count)"),
	}
	fs.Var(&sf.partitions, "partition",
		"scheduled partition window at:heal:leftSize (repeatable; heal 0 = never)")
	return sf
}

// spec assembles and validates the flag values into a runnable Spec.
func (sf *specFlags) spec() (optsync.Spec, error) {
	variant := optsync.Auth
	if *sf.algo != string(optsync.AlgoAuth) {
		variant = optsync.Primitive
	}
	f := *sf.f
	if f < 0 {
		f = variant.MaxFaults(*sf.n)
	}
	faulty := *sf.faulty
	if faulty < 0 {
		faulty = f
	}
	p := optsync.Params{
		N: *sf.n, F: f, Variant: variant,
		Rho:  optsync.Rho(*sf.rho),
		DMin: *sf.dmin, DMax: *sf.dmax,
		Period:      *sf.period,
		InitialSkew: *sf.dmax / 2,
	}.WithDefaults()
	if err := p.Validate(); err != nil {
		return optsync.Spec{}, err
	}
	windows, err := parsePartitions(sf.partitions)
	if err != nil {
		return optsync.Spec{}, err
	}
	if *sf.shards < 0 {
		return optsync.Spec{}, fmt.Errorf("-shards %d invalid (0 auto-picks, 1 forces serial, k>1 runs k shard workers)", *sf.shards)
	}
	return optsync.Spec{
		Algo: optsync.Algorithm(*sf.algo), Params: p,
		FaultyCount: faulty, Attack: optsync.Attack(*sf.attack),
		Horizon: *sf.horizon, Seed: *sf.seed,
		Topology: *sf.topology, Partitions: windows,
		Shards: *sf.shards,
	}, nil
}

func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "campaign":
			return runCampaignCmd(args[1:])
		case "trace":
			return runTraceCmd(args[1:])
		case "query":
			return runQueryCmd(args[1:])
		case "serve":
			return runServeCmd(args[1:])
		case "work":
			return runWorkCmd(args[1:])
		}
	}

	fs := flag.NewFlagSet("syncsim", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiments and exit")
		exp     = fs.String("exp", "all", "experiment id (T1..T8, F1..F7, A1..A3, W1..W3, or 'all')")
		csvOut  = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut = fs.Bool("json", false, "emit JSON instead of aligned tables")
		workers = fs.Int("workers", 0, "worker pool size for experiment batches (0 = all cores)")
		custom  = fs.Bool("run", false, "run a single custom simulation instead of an experiment")
		trace   = fs.String("trace", "", "record the run's event trace to this file (custom runs; .lake = queryable columnar lake, .bin/.trace = compact binary, else JSONL; replay with `syncsim trace -in FILE`, query lakes with `syncsim query`)")

		sf = addSpecFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvOut && *jsonOut {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}
	optsync.SetDefaultWorkers(*workers)

	if *list {
		for _, s := range optsync.Scenarios() {
			fmt.Printf("%-4s %s\n", s.ID, s.Title)
		}
		return nil
	}

	if *custom {
		spec, err := sf.spec()
		if err != nil {
			return err
		}
		return runCustom(spec, *jsonOut, *csvOut, *trace)
	}
	if *trace != "" {
		return fmt.Errorf("-trace applies to custom runs (-run)")
	}
	if *sf.topology != "" || len(sf.partitions) > 0 {
		return fmt.Errorf("-topology and -partition apply to custom runs (-run) and campaigns")
	}

	var scenarios []optsync.Scenario
	if *exp == "all" {
		scenarios = optsync.Scenarios()
	} else {
		s, ok := optsync.FindScenario(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		scenarios = []optsync.Scenario{s}
	}
	enc := json.NewEncoder(os.Stdout)
	for _, s := range scenarios {
		tables, err := s.Run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", s.ID, err)
		}
		for _, t := range tables {
			switch {
			case *jsonOut:
				if err := enc.Encode(t); err != nil {
					return err
				}
			case *csvOut:
				fmt.Print(t.CSV())
			default:
				fmt.Println(t.Render())
			}
		}
	}
	return nil
}

func runCustom(spec optsync.Spec, jsonOut, csvOut bool, tracePath string) error {
	var opts []optsync.Option
	if tracePath != "" {
		sink, f, err := traceSinkFor(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		opts = append(opts, traceOption(sink))
	}

	// Machine-readable modes stream through the structured sinks.
	if jsonOut || csvOut {
		var sink optsync.Sink = optsync.NewJSONSink(os.Stdout)
		if csvOut {
			sink = optsync.NewCSVSink(os.Stdout)
		}
		_, err := optsync.Run(context.Background(), spec, append(opts, optsync.WithSink(sink))...)
		return err
	}

	res, err := optsync.Run(context.Background(), spec, opts...)
	if err != nil {
		return err
	}
	p := spec.Params
	title := fmt.Sprintf("custom run: %s n=%d f=%d faulty=%d attack=%s",
		spec.Algo, p.N, p.F, spec.FaultyCount, spec.Attack)
	if spec.Topology != "" {
		title += " topology=" + spec.Topology
	}
	if len(spec.Partitions) > 0 {
		title += fmt.Sprintf(" partitions=%d", len(spec.Partitions))
	}
	t := optsync.NewTable(title, "metric", "measured", "bound", "status")
	t.AddRow("max skew (s)", optsync.F(res.MaxSkew), optsync.F(res.SkewBound), optsync.FmtBool(res.WithinSkew))
	t.AddRow("max spread (s)", optsync.F(res.MaxSpread), optsync.F(res.SpreadBound),
		optsync.FmtBool(res.MaxSpread <= res.SpreadBound+1e-9))
	t.AddRow("min period (s)", optsync.F(res.MinPeriod), optsync.F(res.PminBound),
		optsync.FmtBool(res.MinPeriod >= res.PminBound-1e-9))
	t.AddRow("max period (s)", optsync.F(res.MaxPeriod), optsync.F(res.PmaxBound),
		optsync.FmtBool(res.MaxPeriod <= res.PmaxBound+1e-9))
	t.AddRow("rate lo", optsync.F(res.EnvLo), optsync.F(res.EnvBoundLo),
		optsync.FmtBool(res.EnvLo >= res.EnvBoundLo))
	t.AddRow("rate hi", optsync.F(res.EnvHi), optsync.F(res.EnvBoundHi),
		optsync.FmtBool(res.EnvHi <= res.EnvBoundHi))
	t.AddRow("complete rounds", fmt.Sprint(res.CompleteRounds), "-", "ok")
	t.AddRow("msgs/round", optsync.F(res.MsgsPerRound), fmt.Sprint(p.MessagesPerRound()), "ok")
	fmt.Println(t.Render())
	return nil
}
