// Command syncsim runs the reproduction experiments for Srikanth & Toueg,
// "Optimal Clock Synchronization" (PODC 1985), through the public optsync
// API.
//
// Usage:
//
//	syncsim -list             list experiments
//	syncsim -exp T1           run one experiment and print its tables
//	syncsim -exp all          run the full suite (default)
//	syncsim -exp T1 -csv      emit CSV instead of aligned tables
//	syncsim -exp T1 -json     emit JSON instead of aligned tables
//	syncsim -exp all -workers 8   fan experiment runs out over 8 workers
//
// A custom single run is also available:
//
//	syncsim -run -algo st-auth -n 7 -f 3 -rho 1e-4 -dmax 0.01 \
//	        -period 1 -horizon 30 -attack silent -seed 1 -json
//
// Custom runs take a network topology and scheduled partitions:
//
//	syncsim -run -n 16 -topology wan:4
//	syncsim -run -n 7 -horizon 35 -partition 10:20:3
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"optsync"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "syncsim:", err)
		os.Exit(1)
	}
}

// algoUsage and attackUsage derive the flag help from the registry, so
// protocols and attacks registered by linked-in packages show up too.
func algoUsage() string {
	names := make([]string, 0, 8)
	for _, a := range optsync.Protocols() {
		names = append(names, string(a))
	}
	return "algorithm: " + strings.Join(names, " | ")
}

func attackUsage() string {
	names := make([]string, 0, 8)
	for _, a := range optsync.Attacks() {
		names = append(names, string(a))
	}
	return "attack: " + strings.Join(names, "|")
}

func topologyUsage() string {
	return "network topology: " + strings.Join(optsync.Topologies(), "[:arg] | ") +
		"[:arg] (e.g. wan:4 = 4 WAN regions, ring:6 = degree-6 circulant)"
}

// parsePartitions parses repeated -partition values "at:heal:leftSize"
// (heal 0 = never heals). strconv parsing rejects trailing garbage that
// Sscanf would silently drop.
func parsePartitions(specs []string) ([]optsync.Partition, error) {
	out := make([]optsync.Partition, 0, len(specs))
	for _, s := range specs {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("partition %q: want at:heal:leftSize", s)
		}
		var (
			p   optsync.Partition
			err error
		)
		if p.At, err = strconv.ParseFloat(parts[0], 64); err != nil {
			return nil, fmt.Errorf("partition %q: bad at %q", s, parts[0])
		}
		if p.Heal, err = strconv.ParseFloat(parts[1], 64); err != nil {
			return nil, fmt.Errorf("partition %q: bad heal %q", s, parts[1])
		}
		if p.LeftSize, err = strconv.Atoi(parts[2]); err != nil {
			return nil, fmt.Errorf("partition %q: bad leftSize %q", s, parts[2])
		}
		out = append(out, p)
	}
	return out, nil
}

// stringList collects a repeatable flag.
type stringList []string

func (l *stringList) String() string     { return strings.Join(*l, ",") }
func (l *stringList) Set(v string) error { *l = append(*l, v); return nil }

func run(args []string) error {
	fs := flag.NewFlagSet("syncsim", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiments and exit")
		exp     = fs.String("exp", "all", "experiment id (T1..T8, F1..F7, A1..A3, W1..W3, or 'all')")
		csvOut  = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut = fs.Bool("json", false, "emit JSON instead of aligned tables")
		workers = fs.Int("workers", 0, "worker pool size for experiment batches (0 = all cores)")
		custom  = fs.Bool("run", false, "run a single custom simulation instead of an experiment")

		algo     = fs.String("algo", "st-auth", algoUsage())
		n        = fs.Int("n", 7, "number of processes")
		f        = fs.Int("f", -1, "fault bound (-1 = maximum for the algorithm)")
		faulty   = fs.Int("faulty", -1, "actual faulty count (-1 = same as -f)")
		rho      = fs.Float64("rho", 1e-4, "hardware drift bound")
		dmin     = fs.Float64("dmin", 0.002, "min message delay (s)")
		dmax     = fs.Float64("dmax", 0.01, "max message delay (s)")
		period   = fs.Float64("period", 1, "resynchronization period P (s)")
		horizon  = fs.Float64("horizon", 30, "simulated duration (s)")
		attack   = fs.String("attack", "silent", attackUsage())
		seed     = fs.Int64("seed", 1, "simulation seed")
		topology = fs.String("topology", "", topologyUsage())

		partitions stringList
	)
	fs.Var(&partitions, "partition",
		"scheduled partition window at:heal:leftSize (repeatable; heal 0 = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvOut && *jsonOut {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}
	optsync.SetDefaultWorkers(*workers)

	if *list {
		for _, s := range optsync.Scenarios() {
			fmt.Printf("%-4s %s\n", s.ID, s.Title)
		}
		return nil
	}

	if *custom {
		windows, err := parsePartitions(partitions)
		if err != nil {
			return err
		}
		return runCustom(customSpec{
			algo: *algo, n: *n, f: *f, faulty: *faulty,
			rho: *rho, dmin: *dmin, dmax: *dmax,
			period: *period, horizon: *horizon,
			attack: *attack, seed: *seed,
			topology: *topology, partitions: windows,
			jsonOut: *jsonOut, csvOut: *csvOut,
		})
	}
	if *topology != "" || len(partitions) > 0 {
		return fmt.Errorf("-topology and -partition apply to custom runs (-run)")
	}

	var scenarios []optsync.Scenario
	if *exp == "all" {
		scenarios = optsync.Scenarios()
	} else {
		s, ok := optsync.FindScenario(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		scenarios = []optsync.Scenario{s}
	}
	enc := json.NewEncoder(os.Stdout)
	for _, s := range scenarios {
		for _, t := range s.Run() {
			switch {
			case *jsonOut:
				if err := enc.Encode(t); err != nil {
					return err
				}
			case *csvOut:
				fmt.Print(t.CSV())
			default:
				fmt.Println(t.Render())
			}
		}
	}
	return nil
}

type customSpec struct {
	algo            string
	n, f, faulty    int
	rho             float64
	dmin, dmax      float64
	period, horizon float64
	attack          string
	seed            int64
	topology        string
	partitions      []optsync.Partition
	jsonOut, csvOut bool
}

func runCustom(c customSpec) error {
	variant := optsync.Auth
	if c.algo != string(optsync.AlgoAuth) {
		variant = optsync.Primitive
	}
	if c.f < 0 {
		c.f = variant.MaxFaults(c.n)
	}
	if c.faulty < 0 {
		c.faulty = c.f
	}
	p := optsync.Params{
		N: c.n, F: c.f, Variant: variant,
		Rho:  optsync.Rho(c.rho),
		DMin: c.dmin, DMax: c.dmax,
		Period:      c.period,
		InitialSkew: c.dmax / 2,
	}.WithDefaults()
	if err := p.Validate(); err != nil {
		return err
	}
	spec := optsync.Spec{
		Algo: optsync.Algorithm(c.algo), Params: p,
		FaultyCount: c.faulty, Attack: optsync.Attack(c.attack),
		Horizon: c.horizon, Seed: c.seed,
		Topology: c.topology, Partitions: c.partitions,
	}

	// Machine-readable modes stream through the structured sinks.
	if c.jsonOut || c.csvOut {
		var sink optsync.Sink = optsync.NewJSONSink(os.Stdout)
		if c.csvOut {
			sink = optsync.NewCSVSink(os.Stdout)
		}
		_, err := optsync.Run(context.Background(), spec, optsync.WithSink(sink))
		return err
	}

	res, err := optsync.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("custom run: %s n=%d f=%d faulty=%d attack=%s",
		c.algo, c.n, c.f, c.faulty, c.attack)
	if c.topology != "" {
		title += " topology=" + c.topology
	}
	if len(c.partitions) > 0 {
		title += fmt.Sprintf(" partitions=%d", len(c.partitions))
	}
	t := optsync.NewTable(title, "metric", "measured", "bound", "status")
	t.AddRow("max skew (s)", optsync.F(res.MaxSkew), optsync.F(res.SkewBound), optsync.FmtBool(res.WithinSkew))
	t.AddRow("max spread (s)", optsync.F(res.MaxSpread), optsync.F(res.SpreadBound),
		optsync.FmtBool(res.MaxSpread <= res.SpreadBound+1e-9))
	t.AddRow("min period (s)", optsync.F(res.MinPeriod), optsync.F(res.PminBound),
		optsync.FmtBool(res.MinPeriod >= res.PminBound-1e-9))
	t.AddRow("max period (s)", optsync.F(res.MaxPeriod), optsync.F(res.PmaxBound),
		optsync.FmtBool(res.MaxPeriod <= res.PmaxBound+1e-9))
	t.AddRow("rate lo", optsync.F(res.EnvLo), optsync.F(res.EnvBoundLo),
		optsync.FmtBool(res.EnvLo >= res.EnvBoundLo))
	t.AddRow("rate hi", optsync.F(res.EnvHi), optsync.F(res.EnvBoundHi),
		optsync.FmtBool(res.EnvHi <= res.EnvBoundHi))
	t.AddRow("complete rounds", fmt.Sprint(res.CompleteRounds), "-", "ok")
	t.AddRow("msgs/round", optsync.F(res.MsgsPerRound), fmt.Sprint(p.MessagesPerRound()), "ok")
	fmt.Println(t.Render())
	return nil
}
