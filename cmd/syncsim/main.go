// Command syncsim runs the reproduction experiments for Srikanth & Toueg,
// "Optimal Clock Synchronization" (PODC 1985).
//
// Usage:
//
//	syncsim -list             list experiments
//	syncsim -exp T1           run one experiment and print its tables
//	syncsim -exp all          run the full suite (default)
//	syncsim -exp T1 -csv      emit CSV instead of aligned tables
//
// A custom single run is also available:
//
//	syncsim -run -algo st-auth -n 7 -f 3 -rho 1e-4 -dmax 0.01 \
//	        -period 1 -horizon 30 -attack silent -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"optsync/internal/clock"
	"optsync/internal/core/bounds"
	"optsync/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "syncsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("syncsim", flag.ContinueOnError)
	var (
		list   = fs.Bool("list", false, "list experiments and exit")
		exp    = fs.String("exp", "all", "experiment id (T1..T7, F1..F6, or 'all')")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		custom = fs.Bool("run", false, "run a single custom simulation instead of an experiment")

		algo    = fs.String("algo", "st-auth", "algorithm: st-auth | st-primitive | cnv | ftm")
		n       = fs.Int("n", 7, "number of processes")
		f       = fs.Int("f", -1, "fault bound (-1 = maximum for the algorithm)")
		faulty  = fs.Int("faulty", -1, "actual faulty count (-1 = same as -f)")
		rho     = fs.Float64("rho", 1e-4, "hardware drift bound")
		dmin    = fs.Float64("dmin", 0.002, "min message delay (s)")
		dmax    = fs.Float64("dmax", 0.01, "max message delay (s)")
		period  = fs.Float64("period", 1, "resynchronization period P (s)")
		horizon = fs.Float64("horizon", 30, "simulated duration (s)")
		attack  = fs.String("attack", "silent", "attack: none|silent|crash-mid|rush|bias|equivocate")
		seed    = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, s := range harness.Scenarios() {
			fmt.Printf("%-4s %s\n", s.ID, s.Title)
		}
		return nil
	}

	if *custom {
		return runCustom(*algo, *n, *f, *faulty, *rho, *dmin, *dmax, *period, *horizon, *attack, *seed)
	}

	var scenarios []harness.Scenario
	if *exp == "all" {
		scenarios = harness.Scenarios()
	} else {
		s, ok := harness.FindScenario(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		scenarios = []harness.Scenario{s}
	}
	for _, s := range scenarios {
		for _, t := range s.Run() {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.Render())
			}
		}
	}
	return nil
}

func runCustom(algo string, n, f, faultyCount int, rho, dmin, dmax, period, horizon float64, attack string, seed int64) error {
	variant := bounds.Auth
	if algo != string(harness.AlgoAuth) {
		variant = bounds.Primitive
	}
	if f < 0 {
		f = variant.MaxFaults(n)
	}
	if faultyCount < 0 {
		faultyCount = f
	}
	p := bounds.Params{
		N: n, F: f, Variant: variant,
		Rho:  clock.Rho(rho),
		DMin: dmin, DMax: dmax,
		Period:      period,
		InitialSkew: dmax / 2,
	}.WithDefaults()
	if err := p.Validate(); err != nil {
		return err
	}
	res := harness.Run(harness.Spec{
		Algo: harness.Algorithm(algo), Params: p,
		FaultyCount: faultyCount, Attack: harness.Attack(attack),
		Horizon: horizon, Seed: seed,
	})
	t := harness.NewTable(
		fmt.Sprintf("custom run: %s n=%d f=%d faulty=%d attack=%s", algo, n, f, faultyCount, attack),
		"metric", "measured", "bound", "status")
	t.AddRow("max skew (s)", harness.F(res.MaxSkew), harness.F(res.SkewBound), harness.FmtBool(res.WithinSkew))
	t.AddRow("max spread (s)", harness.F(res.MaxSpread), harness.F(res.SpreadBound),
		harness.FmtBool(res.MaxSpread <= res.SpreadBound+1e-9))
	t.AddRow("min period (s)", harness.F(res.MinPeriod), harness.F(res.PminBound),
		harness.FmtBool(res.MinPeriod >= res.PminBound-1e-9))
	t.AddRow("max period (s)", harness.F(res.MaxPeriod), harness.F(res.PmaxBound),
		harness.FmtBool(res.MaxPeriod <= res.PmaxBound+1e-9))
	t.AddRow("rate lo", harness.F(res.EnvLo), harness.F(res.EnvBoundLo),
		harness.FmtBool(res.EnvLo >= res.EnvBoundLo))
	t.AddRow("rate hi", harness.F(res.EnvHi), harness.F(res.EnvBoundHi),
		harness.FmtBool(res.EnvHi <= res.EnvBoundHi))
	t.AddRow("complete rounds", fmt.Sprint(res.CompleteRounds), "-", "ok")
	t.AddRow("msgs/round", harness.F(res.MsgsPerRound), fmt.Sprint(p.MessagesPerRound()), "ok")
	fmt.Println(t.Render())
	return nil
}
