package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optsync"
)

// traceRunArgs is the canonical custom run the trace tests record: small
// but with a partition window so partition markers appear in the stream.
func traceRunArgs(path string) []string {
	return []string{
		"-run", "-n", "5", "-horizon", "6", "-seed", "3",
		"-partition", "2:4:2", "-trace", path,
	}
}

// TestTraceRoundTripCLI is the end-to-end acceptance check: a run's
// exported trace, replayed through `syncsim trace`, reproduces the live
// collectors' aggregates byte-for-byte — in both framings.
func TestTraceRoundTripCLI(t *testing.T) {
	for _, name := range []string{"run.jsonl", "run.bin", "run.lake"} {
		path := filepath.Join(t.TempDir(), name)
		if _, err := capture(t, func() error { return run(traceRunArgs(path)) }); err != nil {
			t.Fatal(err)
		}

		// The live reference: the same spec, collectors attached in-process.
		sf := addSpecFlagsForTest(t, []string{"-n", "5", "-horizon", "6", "-seed", "3", "-partition", "2:4:2"})
		spec, err := sf.spec()
		if err != nil {
			t.Fatal(err)
		}
		live := traceCollectors()
		opts := make([]optsync.Option, len(live))
		for i, c := range live {
			opts[i] = optsync.WithCollector(c)
		}
		if _, err := optsync.Run(context.Background(), spec, opts...); err != nil {
			t.Fatal(err)
		}

		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		replayed, n, err := replayAggregates(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("no events replayed")
		}
		liveOut := renderAggregates(live, n)
		replayOut := renderAggregates(replayed, n)
		if liveOut != replayOut {
			t.Fatalf("%s: replayed aggregates diverge from live run\nlive:\n%s\nreplay:\n%s",
				name, liveOut, replayOut)
		}
	}
}

// addSpecFlagsForTest parses spec flags the way run() does.
func addSpecFlagsForTest(t *testing.T, args []string) *specFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sf := addSpecFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return sf
}

func TestTraceSubcommandTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.bin")
	if _, err := capture(t, func() error { return run(traceRunArgs(path)) }); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"trace", "-in", path}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace aggregates", "skew", "p95_s", "messages", "sent", "events replayed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceSubcommandJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := capture(t, func() error { return run(traceRunArgs(path)) }); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"trace", "-in", path, "-json"}) })
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Events     int                       `json:"events"`
		Collectors map[string][]optsync.Stat `json:"collectors"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("trace -json output not JSON: %v\n%s", err, out)
	}
	if rep.Events == 0 || len(rep.Collectors) != 4 {
		t.Fatalf("trace -json = %+v", rep)
	}
	if _, ok := rep.Collectors["skew"]; !ok {
		t.Fatalf("skew collector missing: %v", rep.Collectors)
	}
}

// TestTraceConvertChain drives the conversion path through every
// encoding and back: binary -> lake -> jsonl -> binary must reproduce
// the original file bit-for-bit (the lake's seq column restores exact
// stream order, and all three encodings round-trip float64 bits).
func TestTraceConvertChain(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "run.bin")
	if _, err := capture(t, func() error { return run(traceRunArgs(orig)) }); err != nil {
		t.Fatal(err)
	}
	lake := filepath.Join(dir, "a.lake")
	jsonl := filepath.Join(dir, "b.jsonl")
	back := filepath.Join(dir, "c.bin")
	for _, step := range [][2]string{{orig, lake}, {lake, jsonl}, {jsonl, back}} {
		out, err := capture(t, func() error {
			return run([]string{"trace", "-in", step[0], "-out", step[1]})
		})
		if err != nil {
			t.Fatalf("convert %s -> %s: %v", step[0], step[1], err)
		}
		if !strings.Contains(out, "converted") {
			t.Fatalf("conversion reported nothing: %q", out)
		}
	}
	a, err := os.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("binary -> lake -> jsonl -> binary drifted: %d vs %d bytes", len(a), len(b))
	}
}

// TestTraceLakeAggregatesMatchRowTrace is the CLI-layer byte-diff the CI
// smoke step automates: the same deterministic run recorded as a row
// trace and as a lake must replay to byte-identical aggregate tables.
func TestTraceLakeAggregatesMatchRowTrace(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "run.bin")
	lake := filepath.Join(dir, "run.lake")
	for _, path := range []string{bin, lake} {
		if _, err := capture(t, func() error { return run(traceRunArgs(path)) }); err != nil {
			t.Fatal(err)
		}
	}
	binOut, err := capture(t, func() error { return run([]string{"trace", "-in", bin}) })
	if err != nil {
		t.Fatal(err)
	}
	lakeOut, err := capture(t, func() error { return run([]string{"trace", "-in", lake}) })
	if err != nil {
		t.Fatal(err)
	}
	if binOut != lakeOut {
		t.Fatalf("lake aggregates diverge from row-trace aggregates\nbin:\n%s\nlake:\n%s", binOut, lakeOut)
	}
}

func TestTraceSubcommandErrors(t *testing.T) {
	if err := run([]string{"trace"}); err == nil || !strings.Contains(err.Error(), "-in") {
		t.Fatalf("missing -in not reported: %v", err)
	}
	if err := run([]string{"trace", "-in", "/no/such/file"}); err == nil {
		t.Fatal("missing file not reported")
	}
	if err := run([]string{"-trace", "x.jsonl", "-exp", "T6"}); err == nil ||
		!strings.Contains(err.Error(), "-trace") {
		t.Fatalf("-trace outside -run not rejected: %v", err)
	}
}
