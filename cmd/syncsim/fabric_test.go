package main

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestFabricCLIErrors(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"serve", "-store", t.TempDir()}, "-axis"},
		{[]string{"serve", "-axis", "faulty=0,1"}, "-store"},
		{[]string{"serve", "-axis", "faulty=0,1", "-store", t.TempDir(), "-csv", "-json"}, "mutually exclusive"},
		{[]string{"work"}, "-coordinator"},
		{[]string{"work", "-coordinator", "http://x", "stray"}, "unexpected argument"},
	} {
		_, err := capture(t, func() error { return run(tc.args) })
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
		}
	}
}

// buildSyncsim compiles the binary once into a temp dir for the
// separate-process fleet tests.
func buildSyncsim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "syncsim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// scanForPrefixes streams r line by line into t's log and sends the
// first line matching each prefix on that prefix's channel (a single
// scanner owns the reader, and it keeps draining afterwards so the
// child process never blocks on a full pipe).
func scanForPrefixes(t *testing.T, r io.Reader, prefixes ...string) []<-chan string {
	t.Helper()
	chans := make([]chan string, len(prefixes))
	out := make([]<-chan string, len(prefixes))
	for i := range prefixes {
		chans[i] = make(chan string, 1)
		out[i] = chans[i]
	}
	go func() {
		sc := bufio.NewScanner(r)
		sent := make([]bool, len(prefixes))
		for sc.Scan() {
			line := sc.Text()
			t.Log(line)
			for i, prefix := range prefixes {
				if !sent[i] && strings.HasPrefix(line, prefix) {
					chans[i] <- line
					sent[i] = true
				}
			}
		}
		for i, s := range sent {
			if !s {
				close(chans[i])
			}
		}
	}()
	return out
}

func scanForPrefix(t *testing.T, r io.Reader, prefix string) <-chan string {
	t.Helper()
	return scanForPrefixes(t, r, prefix)[0]
}

func waitLine(t *testing.T, ch <-chan string, what string) string {
	t.Helper()
	select {
	case line, ok := <-ch:
		if !ok {
			t.Fatalf("%s: stream ended without the expected line", what)
		}
		return line
	case <-time.After(60 * time.Second):
		t.Fatalf("%s: timed out", what)
		return ""
	}
}

var fabricSpecArgs = []string{"-n", "5", "-horizon", "4", "-axis", "faulty=0,1", "-seeds", "2"}

// TestServeWorkSeparateProcesses is the distribution test at full
// fidelity: a coordinator process and two worker processes — one of
// which is SIGKILLed mid-campaign — settle the campaign, and the
// coordinator's aggregates are byte-identical to a single-process
// campaign run of the same sweep. The killed worker's leased cells are
// reclaimed after the TTL, so nothing is lost.
func TestServeWorkSeparateProcesses(t *testing.T) {
	// Reference: the same sweep, single-process, in-process.
	want, err := capture(t, func() error {
		return run(append([]string{"campaign"}, append(fabricSpecArgs, "-csv")...))
	})
	if err != nil {
		t.Fatal(err)
	}

	bin := buildSyncsim(t)
	storeDir := t.TempDir() + "/store"

	serve := exec.Command(bin, append([]string{"serve",
		"-store", storeDir, "-addr", "127.0.0.1:0",
		"-lease-ttl", "1s", "-lease-batch", "1", "-linger", "200ms", "-csv"},
		fabricSpecArgs...)...)
	serveErr, err := serve.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var serveOut strings.Builder
	serve.Stdout = &serveOut
	readyLine := scanForPrefix(t, serveErr, "serving campaign on ")
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill()
	line := waitLine(t, readyLine, "serve readiness")
	url := strings.TrimPrefix(line, "serving campaign on ")
	url = strings.Fields(url)[0]

	workCmd := func(name string) (*exec.Cmd, io.ReadCloser) {
		cmd := exec.Command(bin, "work", "-coordinator", url,
			"-name", name, "-batch", "1", "-poll", "50ms", "-backoff", "20ms")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		return cmd, stderr
	}

	// Doomed worker: SIGKILL as soon as it has executed its first cell,
	// i.e. while it very likely holds a fresh lease it will never report.
	doomed, doomedErr := workCmd("doomed")
	doomedProgress := scanForPrefix(t, doomedErr, "worker: 1 cells")
	if err := doomed.Start(); err != nil {
		t.Fatal(err)
	}
	waitLine(t, doomedProgress, "doomed worker first cell")
	doomed.Process.Kill()
	doomed.Wait()

	// Survivor: finishes everything, including the reclaimed cells.
	survivor, survivorErr := workCmd("survivor")
	survivorDone := scanForPrefix(t, survivorErr, "campaign complete:")
	if err := survivor.Start(); err != nil {
		t.Fatal(err)
	}
	waitLine(t, survivorDone, "survivor completion")
	if err := survivor.Wait(); err != nil {
		t.Fatalf("survivor exited: %v", err)
	}
	if err := serve.Wait(); err != nil {
		t.Fatalf("serve exited: %v", err)
	}

	if got := serveOut.String(); got != want {
		t.Fatalf("fleet aggregates differ from single-process run:\n--- fleet\n%s--- single\n%s", got, want)
	}

	// The served store resumes a plain single-process campaign run with
	// zero executions and, again, byte-identical output.
	resumed, err := capture(t, func() error {
		return run(append([]string{"campaign", "-store", storeDir}, append(fabricSpecArgs, "-csv")...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != want {
		t.Fatalf("resume over fleet store drifted:\n%s\nvs\n%s", resumed, want)
	}
}

// TestServeInterruptGraceful SIGINTs an idle coordinator (no workers
// attached) and expects a clean exit with the interrupted/resume notice
// — the signal.NotifyContext path end to end.
func TestServeInterruptGraceful(t *testing.T) {
	bin := buildSyncsim(t)
	serve := exec.Command(bin, append([]string{"serve",
		"-store", t.TempDir() + "/store", "-addr", "127.0.0.1:0"},
		fabricSpecArgs...)...)
	serveErr, err := serve.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	notices := scanForPrefixes(t, serveErr, "serving campaign on ", "interrupted:")
	ready, interrupted := notices[0], notices[1]
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill()
	waitLine(t, ready, "serve readiness")
	if err := serve.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	notice := waitLine(t, interrupted, "interrupt notice")
	if !strings.Contains(notice, "0/4 cells settled") {
		t.Fatalf("interrupt notice = %q, want 0/4 settled", notice)
	}
	if err := serve.Wait(); err != nil {
		t.Fatalf("interrupted serve exited non-zero: %v", err)
	}
}

// TestWorkInterruptGraceful SIGTERMs a worker stuck polling — the test
// leases every cell to a phantom sibling first, so the worker has
// nothing to do — and expects a clean exit carrying its stats.
func TestWorkInterruptGraceful(t *testing.T) {
	bin := buildSyncsim(t)
	storeDir := t.TempDir() + "/store"
	serve := exec.Command(bin, append([]string{"serve",
		"-store", storeDir, "-addr", "127.0.0.1:0", "-lease-ttl", "10m"},
		fabricSpecArgs...)...)
	serveErr, err := serve.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	ready := scanForPrefix(t, serveErr, "serving campaign on ")
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill()
	line := waitLine(t, ready, "serve readiness")
	url := strings.Fields(strings.TrimPrefix(line, "serving campaign on "))[0]

	// Phantom worker checks out every cell and never reports.
	resp, err := http.Post(url+"/lease", "application/json",
		strings.NewReader(`{"worker":"phantom","max":100}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	work := exec.Command(bin, "work", "-coordinator", url, "-poll", "50ms")
	workErr, err := work.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	interrupted := scanForPrefix(t, workErr, "interrupted:")
	if err := work.Start(); err != nil {
		t.Fatal(err)
	}
	defer work.Process.Kill()
	time.Sleep(300 * time.Millisecond) // let it enter the poll loop
	if err := work.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	notice := waitLine(t, interrupted, "worker interrupt notice")
	if !strings.Contains(notice, "0 cells executed") {
		t.Fatalf("worker interrupt notice = %q", notice)
	}
	if err := work.Wait(); err != nil {
		t.Fatalf("interrupted worker exited non-zero: %v", err)
	}
}
