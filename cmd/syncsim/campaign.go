package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"optsync"
)

// parseAxes parses repeated -axis values "field=v1,v2,v3".
func parseAxes(specs []string) ([]optsync.Axis, error) {
	out := make([]optsync.Axis, 0, len(specs))
	for _, s := range specs {
		field, list, ok := strings.Cut(s, "=")
		if !ok || field == "" {
			return nil, fmt.Errorf("axis %q: want field=v1,v2,... (fields: %s)",
				s, strings.Join(optsync.AxisFields(), " "))
		}
		out = append(out, optsync.Axis{Field: field, Values: strings.Split(list, ",")})
	}
	return out, nil
}

// deriveSpecDefaults builds the per-cell finisher that keeps campaign
// cells consistent with the equivalent single -run invocation. The base
// spec bakes the CLI's derived conventions against the *base* flags
// (alpha and initial skew from -dmax, the fault bound from -n and
// -algo); when an axis sweeps one of the inputs, the stale derivations
// must be recomputed per cell — silently simulating `-axis dmax=0.018`
// with the alpha of dmax 0.01 is exactly the bug this prevents. Values
// the user pinned explicitly (a -f flag, a swept axis) are left alone.
func deriveSpecDefaults(fs *flag.FlagSet, axes []optsync.Axis) func(*optsync.Spec) error {
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	swept := make(map[string]bool, len(axes))
	for _, ax := range axes {
		swept[ax.Field] = true
	}
	return func(s *optsync.Spec) error {
		variant := optsync.Auth
		if s.Algo != optsync.AlgoAuth {
			variant = optsync.Primitive
		}
		s.Params.Variant = variant
		if !explicit["f"] && !swept["f"] {
			s.Params.F = variant.MaxFaults(s.Params.N)
		}
		if !explicit["faulty"] && !swept["faulty"] {
			s.FaultyCount = s.Params.F
		}
		if !swept["initial-skew"] {
			s.Params.InitialSkew = s.Params.DMax / 2
		}
		// Always re-derive alpha ((1+rho)*dmax): the CLI has no -alpha
		// flag, so the baked base value is never a user choice.
		s.Params.Alpha = 0
		return nil
	}
}

// runCampaignCmd implements "syncsim campaign": declarative sweeps with
// a persistent, resumable result store and adaptive threshold search.
// Aggregates go to stdout; the execution accounting line goes to stderr
// so machine-readable output stays pure.
func runCampaignCmd(args []string) error {
	fs := flag.NewFlagSet("syncsim campaign", flag.ContinueOnError)
	var (
		axes stringList

		name       = fs.String("name", "", "campaign name (labels output rows)")
		seeds      = fs.Int("seeds", 1, "seed replicates per grid point")
		samples    = fs.Int("samples", 0, "random-sample this many grid points instead of the full grid (0 = full grid)")
		sampleSeed = fs.Int64("sample-seed", 1, "seed for -samples point selection")
		storeDir   = fs.String("store", "", "result store directory (empty = run unpersisted)")
		resume     = fs.Bool("resume", true, "serve already-completed cells from the store; -resume=false recomputes and overwrites")
		search     = fs.String("search", "", "bisect this axis per group for the last passing value instead of running the full grid")
		cellsOut   = fs.Bool("cells", false, "emit per-cell results instead of per-group aggregates")
		csvOut     = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut    = fs.Bool("json", false, "emit JSON instead of aligned tables")
		workers    = fs.Int("workers", 0, "worker pool size (0 = all cores)")

		sf = addSpecFlags(fs)
	)
	fs.Var(&axes, "axis", "sweep axis field=v1,v2,... (repeatable; fields: "+
		strings.Join(optsync.AxisFields(), " ")+")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvOut && *jsonOut {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}
	if len(axes) == 0 {
		return fmt.Errorf("campaign needs at least one -axis (fields: %s)",
			strings.Join(optsync.AxisFields(), " "))
	}

	base, err := sf.spec()
	if err != nil {
		return err
	}
	parsedAxes, err := parseAxes(axes)
	if err != nil {
		return err
	}
	c := optsync.Campaign{
		Name:    *name,
		Base:    base,
		Axes:    parsedAxes,
		Seeds:   *seeds,
		Samples: *samples, SampleSeed: *sampleSeed,
		Finish: deriveSpecDefaults(fs, parsedAxes),
	}

	opts := []optsync.CampaignOption{optsync.WithCampaignWorkers(*workers)}
	if *storeDir != "" {
		store, err := optsync.OpenStore(*storeDir)
		if err != nil {
			return err
		}
		opts = append(opts, optsync.WithStore(store))
	}
	if !*resume {
		opts = append(opts, optsync.WithRecompute())
	}

	if *search != "" {
		if *cellsOut {
			return fmt.Errorf("-cells applies to full campaigns, not -search")
		}
		report, err := optsync.RunThresholdSearch(context.Background(), c,
			optsync.ThresholdSearch{Axis: *search}, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%d executed, %d cached (exhaustive grid: %d cells)\n",
			report.Executed, report.CacheHits, report.ExhaustiveCells)
		switch {
		case *jsonOut:
			return json.NewEncoder(os.Stdout).Encode(report)
		case *csvOut:
			_, err := fmt.Print(report.Table().CSV())
			return err
		default:
			_, err := fmt.Println(report.Table().Render())
			return err
		}
	}

	if *cellsOut {
		var sink optsync.Sink
		switch {
		case *jsonOut:
			sink = optsync.NewJSONSink(os.Stdout)
		case *csvOut:
			sink = optsync.NewCSVSink(os.Stdout)
		default:
			sink = optsync.NewTableSink(os.Stdout)
		}
		opts = append(opts, optsync.WithCampaignSink(sink))
	}
	report, err := optsync.RunCampaign(context.Background(), c, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, report.Summary())
	if *cellsOut {
		return nil // the sink already streamed the cells
	}
	switch {
	case *jsonOut:
		return json.NewEncoder(os.Stdout).Encode(report)
	case *csvOut:
		_, err := fmt.Print(report.Table().CSV())
		return err
	default:
		_, err := fmt.Println(report.Table().Render())
		return err
	}
}
