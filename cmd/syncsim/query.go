package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"optsync"
)

// queryRecord is the JSONL projection of a matched event — the same
// field names the JSONL trace format uses, so query output pipes back
// into `syncsim trace -in -`.
type queryRecord struct {
	Type  string  `json:"type"`
	T     float64 `json:"t"`
	From  int32   `json:"from"`
	To    int32   `json:"to"`
	Kind  uint16  `json:"kind"`
	Round int32   `json:"round"`
	Value float64 `json:"value"`
	Aux   float64 `json:"aux"`
}

// runQueryCmd implements `syncsim query`: predicate-pushdown queries
// against a columnar trace lake. Events stream out as JSONL (default)
// or CSV in the lake's block order, decoded by a parallel worker pool
// (-workers; 0 = one per core) with output bytes identical at every
// worker count; -ordered switches to the k-way merge that interleaves
// event types by (T, Seq) at some merge cost. -stats prints only what
// the scan touched — the observable proof that the footer index pruned
// non-matching blocks — and answers fully-covered blocks from the
// footer alone, without decoding them.
func runQueryCmd(args []string) (err error) {
	fs := flag.NewFlagSet("syncsim query", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "lake file to query (- for stdin; record one with -run ... -trace run.lake, or convert: syncsim trace -in FILE -out FILE.lake)")
		types   = fs.String("type", "", "comma-separated event types to keep (e.g. skew_sample,pulse); empty = all")
		node    = fs.Int("node", 0, "keep events touching this node id (as sender or receiver)")
		from    = fs.Float64("from", 0, "keep events with T >= this simulated time (s)")
		to      = fs.Float64("to", 0, "keep events with T <= this simulated time (s)")
		round   = fs.Int("round", 0, "keep events of this exact protocol round")
		csv     = fs.Bool("csv", false, "emit CSV instead of JSONL")
		stats   = fs.Bool("stats", false, "print scan statistics (blocks pruned/covered/scanned) instead of events")
		workers = fs.Int("workers", 0, "decode workers (0 = one per core, 1 = serial); output is identical at every count")
		ordered = fs.Bool("ordered", false, "merge event types into (T, Seq) order instead of the lake's block order")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("query: -in FILE is required")
	}
	if *csv && *stats {
		return fmt.Errorf("query: -csv and -stats are mutually exclusive")
	}

	q := optsync.LakeQuery{Workers: *workers}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *types != "" {
		for _, name := range strings.Split(*types, ",") {
			t, ok := optsync.EventTypeByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("query: unknown event type %q (types: %s)", name, eventTypeNames())
			}
			q.Types = append(q.Types, t)
		}
	}
	if set["node"] {
		q = q.WithNode(int32(*node))
	}
	if set["from"] || set["to"] {
		lo, hi := math.Inf(-1), math.Inf(1)
		if set["from"] {
			lo = *from
		}
		if set["to"] {
			hi = *to
		}
		q = q.WithTimeRange(lo, hi)
	}
	if set["round"] {
		q = q.WithRound(int32(*round))
	}

	l, err := openLakeArg(*in)
	if err != nil {
		return err
	}
	defer l.Close()

	w := bufio.NewWriter(os.Stdout)
	// A failed flush (closed stdout pipe, full disk) must surface as the
	// command's error, not vanish: rows already emitted would silently
	// truncate.
	defer func() {
		if ferr := w.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	if *stats {
		// Stats never materializes events: pruned and fully-covered
		// blocks are answered from the footer, only partial blocks
		// decode.
		st, err := l.Stats(q)
		if err != nil {
			return err
		}
		t := optsync.NewTable("lake query", "stat", "value")
		t.AddRow("blocks total", fmt.Sprint(st.BlocksTotal))
		t.AddRow("blocks pruned", fmt.Sprint(st.BlocksPruned))
		t.AddRow("blocks covered", fmt.Sprint(st.BlocksCovered))
		t.AddRow("blocks scanned", fmt.Sprint(st.BlocksScanned))
		t.AddRow("rows decoded", fmt.Sprint(st.RowsDecoded))
		t.AddRow("events matched", fmt.Sprint(st.EventsMatched))
		fmt.Fprintln(w, t.Render())
		return nil
	}
	emit := jsonlEmitter(w)
	if *csv {
		emit = csvEmitter(w)
	}
	scan := l.ScanUnordered
	if *ordered {
		scan = l.Scan
	}
	if _, err := scan(q, emit); err != nil {
		return err
	}
	return nil
}

// openLakeArg opens the lake named by the -in flag, routing "-" through
// an in-memory image (lakes need random access to their footer). A row
// trace is rejected up front with the conversion recipe.
func openLakeArg(in string) (*optsync.Lake, error) {
	if in == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		return optsync.OpenLakeBytes(data)
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	var head [8]byte
	if n, _ := io.ReadFull(f, head[:]); n == len(head) && !bytes.Equal(head[:], optsync.LakeMagic[:]) {
		f.Close()
		return nil, fmt.Errorf("query: %s is not a trace lake (convert a row trace with: syncsim trace -in %s -out %s.lake)",
			in, in, strings.TrimSuffix(in, ".jsonl"))
	}
	f.Close()
	return optsync.OpenLake(in)
}

func jsonlEmitter(w io.Writer) func(optsync.Event) error {
	enc := json.NewEncoder(w)
	return func(ev optsync.Event) error {
		return enc.Encode(queryRecord{
			Type: ev.Type.String(), T: ev.T,
			From: ev.From, To: ev.To,
			Kind: ev.Kind, Round: ev.Round,
			Value: ev.Value, Aux: ev.Aux,
		})
	}
}

func csvEmitter(w io.Writer) func(optsync.Event) error {
	fmt.Fprintln(w, "type,t,from,to,kind,round,value,aux")
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return func(ev optsync.Event) error {
		_, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%s,%s\n",
			ev.Type, g(ev.T), ev.From, ev.To, ev.Kind, ev.Round, g(ev.Value), g(ev.Aux))
		return err
	}
}

func eventTypeNames() string {
	names := make([]string, 0, 11)
	for _, t := range optsync.AllEventTypes() {
		names = append(names, t.String())
	}
	return strings.Join(names, " ")
}
