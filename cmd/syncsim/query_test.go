package main

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"optsync"
)

// recordLake records the canonical test run as a lake and returns its
// path.
func recordLake(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.lake")
	if _, err := capture(t, func() error { return run(traceRunArgs(path)) }); err != nil {
		t.Fatal(err)
	}
	return path
}

// refCount counts the events a query admits via the public API — the
// reference the CLI output is checked against.
func refCount(t *testing.T, path string, q optsync.LakeQuery) int {
	t.Helper()
	n := 0
	if _, err := optsync.QueryLake(path, q, func(optsync.Event) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestQuerySubcommandJSONL(t *testing.T) {
	path := recordLake(t)
	out, err := capture(t, func() error {
		return run([]string{"query", "-in", path, "-type", "pulse"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for _, line := range lines {
		var rec queryRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("query line not JSON: %v\n%s", err, line)
		}
		if rec.Type != "pulse" {
			t.Fatalf("typed query leaked a %q event", rec.Type)
		}
	}
	want := refCount(t, path, optsync.LakeQuery{}.WithTypes(optsync.EventPulse))
	if len(lines) != want || want == 0 {
		t.Fatalf("query emitted %d events, reference %d", len(lines), want)
	}

	// The JSONL output is a valid row trace: it pipes back into replay.
	cols, n, err := replayAggregates(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if n != want || len(cols) == 0 {
		t.Fatalf("query output replayed %d events, want %d", n, want)
	}
}

func TestQuerySubcommandCSVTimeRange(t *testing.T) {
	path := recordLake(t)
	out, err := capture(t, func() error {
		return run([]string{"query", "-in", path, "-type", "skew_sample", "-from", "1", "-to", "2", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "type,t,from,to,kind,round,value,aux" {
		t.Fatalf("csv header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if fields[0] != "skew_sample" {
			t.Fatalf("csv row leaked type %q", fields[0])
		}
		var tm float64
		if _, err := fmt.Sscanf(fields[1], "%g", &tm); err != nil || tm < 1 || tm > 2 {
			t.Fatalf("csv row t=%q outside [1,2] (err %v)", fields[1], err)
		}
	}
	q := optsync.LakeQuery{}.WithTypes(optsync.EventSkewSample).WithTimeRange(1, 2)
	if want := refCount(t, path, q); len(lines)-1 != want || want == 0 {
		t.Fatalf("csv emitted %d rows, reference %d", len(lines)-1, want)
	}
}

func TestQuerySubcommandNodeFilter(t *testing.T) {
	path := recordLake(t)
	out, err := capture(t, func() error {
		return run([]string{"query", "-in", path, "-type", "message_sent", "-node", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for _, line := range lines {
		var rec queryRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.From != 3 && rec.To != 3 {
			t.Fatalf("node query leaked event from=%d to=%d", rec.From, rec.To)
		}
	}
	q := optsync.LakeQuery{}.WithTypes(optsync.EventMessageSent).WithNode(3)
	if want := refCount(t, path, q); len(lines) != want || want == 0 {
		t.Fatalf("query emitted %d events, reference %d", len(lines), want)
	}
}

func TestQuerySubcommandStats(t *testing.T) {
	path := recordLake(t)
	out, err := capture(t, func() error {
		return run([]string{"query", "-in", path, "-type", "pulse", "-stats"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lake query", "blocks total", "blocks pruned", "blocks scanned", "events matched"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
	want := refCount(t, path, optsync.LakeQuery{}.WithTypes(optsync.EventPulse))
	if !strings.Contains(out, fmt.Sprint(want)) {
		t.Fatalf("stats output missing matched count %d:\n%s", want, out)
	}
	// A single-type query must actually prune: the run emits many types,
	// each in its own blocks.
	if strings.Contains(out, "blocks pruned   0\n") {
		t.Fatalf("typed query pruned nothing:\n%s", out)
	}
}

// TestQueryWorkersByteIdentical is the CLI half of the parallel-scan
// determinism contract: every output mode — JSONL in block order,
// -ordered merge, CSV — must produce byte-identical output at workers
// 1, 2, and 8, both for a serially recorded lake and for one recorded
// by the sharded engine (-shards 8), whose block layout already
// interleaved multiple producers.
func TestQueryWorkersByteIdentical(t *testing.T) {
	sharded := filepath.Join(t.TempDir(), "sharded.lake")
	if _, err := capture(t, func() error {
		return run([]string{"-run", "-n", "5", "-horizon", "6", "-seed", "3",
			"-partition", "2:4:2", "-shards", "8", "-trace", sharded})
	}); err != nil {
		t.Fatal(err)
	}
	lakes := map[string]string{"serial": recordLake(t), "sharded": sharded}
	modes := map[string][]string{
		"jsonl":   nil,
		"ordered": {"-ordered"},
		"csv":     {"-csv"},
	}
	for lname, path := range lakes {
		for mname, extra := range modes {
			base := append([]string{"query", "-in", path}, extra...)
			ref, err := capture(t, func() error { return run(append(base, "-workers", "1")) })
			if err != nil {
				t.Fatal(err)
			}
			if strings.TrimSpace(ref) == "" {
				t.Fatalf("%s/%s: empty output", lname, mname)
			}
			for _, w := range []string{"2", "8"} {
				out, err := capture(t, func() error { return run(append(base, "-workers", w)) })
				if err != nil {
					t.Fatal(err)
				}
				if out != ref {
					t.Fatalf("%s/%s: -workers %s output differs from -workers 1", lname, mname, w)
				}
			}
		}
	}

	// The block-order JSONL stream is still a valid row trace: replay
	// aggregates are order-insensitive per collector contract and must
	// match the ordered stream's.
	path := lakes["serial"]
	unordered, err := capture(t, func() error { return run([]string{"query", "-in", path, "-workers", "8"}) })
	if err != nil {
		t.Fatal(err)
	}
	n := refCount(t, path, optsync.LakeQuery{})
	if _, got, err := replayAggregates(strings.NewReader(unordered)); err != nil || got != n {
		t.Fatalf("unordered output replayed %d events, want %d (err %v)", got, n, err)
	}
}

// TestQueryStatsCoveredFastPath pins the footer-only -stats short
// circuit: a whole-lake count has every block fully covered by the
// footer, so nothing is decoded.
func TestQueryStatsCoveredFastPath(t *testing.T) {
	path := recordLake(t)
	out, err := capture(t, func() error {
		return run([]string{"query", "-in", path, "-stats"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, re := range []string{`blocks scanned\s+0\b`, `rows decoded\s+0\b`, `blocks pruned\s+0\b`} {
		if !regexp.MustCompile(re).MatchString(out) {
			t.Fatalf("whole-lake stats decoded something, want %s:\n%s", re, out)
		}
	}
	if regexp.MustCompile(`blocks covered\s+0\b`).MatchString(out) {
		t.Fatalf("whole-lake stats covered no blocks:\n%s", out)
	}
	want := refCount(t, path, optsync.LakeQuery{})
	if !regexp.MustCompile(`events matched\s+` + fmt.Sprint(want) + `\b`).MatchString(out) {
		t.Fatalf("stats missing matched count %d:\n%s", want, out)
	}
}

func TestQuerySubcommandErrors(t *testing.T) {
	if err := run([]string{"query"}); err == nil || !strings.Contains(err.Error(), "-in") {
		t.Fatalf("missing -in not reported: %v", err)
	}
	if err := run([]string{"query", "-in", "/no/such/file"}); err == nil {
		t.Fatal("missing file not reported")
	}

	path := recordLake(t)
	if err := run([]string{"query", "-in", path, "-type", "no_such_type"}); err == nil ||
		!strings.Contains(err.Error(), "unknown event type") {
		t.Fatalf("bad type not reported: %v", err)
	}

	if err := run([]string{"query", "-in", path, "-workers", "-1"}); err == nil ||
		!strings.Contains(err.Error(), "worker") {
		t.Fatalf("negative -workers not reported: %v", err)
	}

	// A row trace is rejected with the conversion recipe, not misparsed.
	bin := filepath.Join(t.TempDir(), "run.bin")
	if _, err := capture(t, func() error { return run(traceRunArgs(bin)) }); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"query", "-in", bin}); err == nil ||
		!strings.Contains(err.Error(), "not a trace lake") || !strings.Contains(err.Error(), "-out") {
		t.Fatalf("row trace not rejected with recipe: %v", err)
	}
}
