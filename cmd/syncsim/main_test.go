package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestListExperiments(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"T1", "T7", "F1", "F7", "A1", "A3"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-exp", "T6"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "broadcast primitive") {
		t.Fatalf("T6 output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "forged_accepts") {
		t.Fatal("T6 columns missing")
	}
}

func TestRunCSV(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-exp", "T7", "-csv"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "algo,n,msgs_per_round,bound,ratio_to_n2\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Fatal("csv output contains table decoration")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-exp", "ZZ"}) }); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestCustomRun(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-run", "-algo", "st-auth", "-n", "5",
			"-horizon", "10", "-attack", "silent", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"custom run", "max skew", "rate hi", "msgs/round"} {
		if !strings.Contains(out, want) {
			t.Fatalf("custom run output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("healthy custom run reported a violation:\n%s", out)
	}
}

func TestCustomRunPrimitiveDefaults(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-run", "-algo", "st-primitive", "-n", "7",
			"-horizon", "10", "-attack", "silent"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "f=2") { // floor((7-1)/3) = 2 auto-derived
		t.Fatalf("primitive default f wrong:\n%s", out)
	}
}

func TestCustomRunInvalidParams(t *testing.T) {
	_, err := capture(t, func() error {
		return run([]string{"-run", "-n", "3", "-f", "2"}) // 2f >= n
	})
	if err == nil {
		t.Fatal("invalid resilience accepted")
	}
}
