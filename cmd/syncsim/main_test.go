package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestListExperiments(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"T1", "T7", "F1", "F7", "A1", "A3"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-exp", "T6"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "broadcast primitive") {
		t.Fatalf("T6 output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "forged_accepts") {
		t.Fatal("T6 columns missing")
	}
}

func TestRunCSV(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-exp", "T7", "-csv"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "algo,n,msgs_per_round,bound,ratio_to_n2\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Fatal("csv output contains table decoration")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-exp", "ZZ"}) }); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestCustomRun(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-run", "-algo", "st-auth", "-n", "5",
			"-horizon", "10", "-attack", "silent", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"custom run", "max skew", "rate hi", "msgs/round"} {
		if !strings.Contains(out, want) {
			t.Fatalf("custom run output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("healthy custom run reported a violation:\n%s", out)
	}
}

func TestCustomRunPrimitiveDefaults(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-run", "-algo", "st-primitive", "-n", "7",
			"-horizon", "10", "-attack", "silent"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "f=2") { // floor((7-1)/3) = 2 auto-derived
		t.Fatalf("primitive default f wrong:\n%s", out)
	}
}

func TestCustomRunInvalidParams(t *testing.T) {
	_, err := capture(t, func() error {
		return run([]string{"-run", "-n", "3", "-f", "2"}) // 2f >= n
	})
	if err == nil {
		t.Fatal("invalid resilience accepted")
	}
}

func TestAttackHelpListsAllRegistered(t *testing.T) {
	usage := attackUsage()
	for _, want := range []string{"none", "silent", "crash-mid", "rush",
		"bias", "equivocate", "selective"} {
		if !strings.Contains(usage, want) {
			t.Fatalf("attack help missing %q: %s", want, usage)
		}
	}
	if !strings.Contains(algoUsage(), "st-primitive") {
		t.Fatalf("algo help malformed: %s", algoUsage())
	}
}

func TestCustomRunJSON(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-run", "-algo", "st-auth", "-n", "5",
			"-horizon", "10", "-attack", "silent", "-seed", "3", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatalf("custom -json output not JSON: %v\n%s", err, out)
	}
	if rec["algo"] != "st-auth" || rec["within_skew"] != true {
		t.Fatalf("json record malformed: %v", rec)
	}
}

func TestExperimentJSON(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-exp", "T7", "-json"}) })
	if err != nil {
		t.Fatal(err)
	}
	var tbl struct {
		Title   string
		Columns []string
		Rows    [][]string
	}
	if err := json.Unmarshal([]byte(out), &tbl); err != nil {
		t.Fatalf("-exp -json output not JSON: %v\n%s", err, out)
	}
	if !strings.Contains(tbl.Title, "message complexity") || len(tbl.Rows) == 0 {
		t.Fatalf("T7 JSON table malformed: %+v", tbl)
	}
}

func TestWorkersFlagDeterminism(t *testing.T) {
	serial, err := capture(t, func() error { return run([]string{"-exp", "T7", "-csv", "-workers", "1"}) })
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := capture(t, func() error { return run([]string{"-exp", "T7", "-csv", "-workers", "8"}) })
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("experiment output depends on -workers:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestCSVAndJSONMutuallyExclusive(t *testing.T) {
	if err := run([]string{"-exp", "T7", "-csv", "-json"}); err == nil {
		t.Fatal("-csv -json accepted together")
	}
}

func TestShardsFlagValidation(t *testing.T) {
	_, err := capture(t, func() error {
		return run([]string{"-run", "-n", "5", "-horizon", "5", "-shards", "-1"})
	})
	if err == nil {
		t.Fatal("negative -shards accepted")
	}
	if !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("error does not name the flag: %v", err)
	}
}

// TestShardsFlagBitExact pins the CLI end of the sharded engine's
// contract: forcing the parallel engine (-shards 2) must render output
// byte-identical to the forced-serial run, and -shards 0 (auto) picks a
// working configuration at any n.
func TestShardsFlagBitExact(t *testing.T) {
	base := []string{"-run", "-algo", "st-auth", "-n", "6",
		"-horizon", "8", "-attack", "silent", "-seed", "7", "-json"}
	serial, err := capture(t, func() error { return run(append(base, "-shards", "1")) })
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := capture(t, func() error { return run(append(base, "-shards", "2")) })
	if err != nil {
		t.Fatal(err)
	}
	if serial != sharded {
		t.Fatalf("-shards 2 output differs from -shards 1:\n%s\nvs\n%s", serial, sharded)
	}
	auto, err := capture(t, func() error { return run(append(base, "-shards", "0")) })
	if err != nil {
		t.Fatal(err)
	}
	if auto != serial {
		t.Fatalf("-shards 0 (auto) output differs from serial:\n%s\nvs\n%s", auto, serial)
	}
}

// TestCampaignShardsInherited: cells expanded from the base spec carry
// the -shards setting, and the campaign aggregates stay byte-identical
// to the serial grid (the store is content-addressed by canonical spec,
// which excludes Shards, so both settings even share cache entries).
func TestCampaignShardsInherited(t *testing.T) {
	serial, err := capture(t, func() error { return run(campaignArgs("", "-csv", "-shards", "1")) })
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := capture(t, func() error { return run(campaignArgs("", "-csv", "-shards", "2")) })
	if err != nil {
		t.Fatal(err)
	}
	if serial != sharded {
		t.Fatalf("campaign -shards 2 aggregates differ from -shards 1:\n%s\nvs\n%s", serial, sharded)
	}
	if _, err := capture(t, func() error { return run(campaignArgs("", "-shards", "-3")) }); err == nil {
		t.Fatal("campaign accepted negative -shards")
	}
}

func TestCustomRunUnknownAttackErrors(t *testing.T) {
	_, err := capture(t, func() error {
		return run([]string{"-run", "-attack", "definitely-not-registered", "-horizon", "5"})
	})
	if err == nil {
		t.Fatal("unknown attack accepted")
	}
	if !strings.Contains(err.Error(), "definitely-not-registered") {
		t.Fatalf("error does not name the attack: %v", err)
	}
}
