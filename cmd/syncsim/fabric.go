package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"optsync"
)

// runServeCmd implements "syncsim serve": a campaign coordinator that
// leases cells to stateless `syncsim work` processes over HTTP and
// aggregates their reports into the result store. SIGINT/SIGTERM shut
// it down gracefully — in-flight reports finish and are stored — and
// the store resumes a re-serve (or a plain `syncsim campaign -resume`)
// exactly where this run stopped.
func runServeCmd(args []string) error {
	fs := flag.NewFlagSet("syncsim serve", flag.ContinueOnError)
	var (
		axes stringList

		name         = fs.String("name", "", "campaign name (labels output rows)")
		seeds        = fs.Int("seeds", 1, "seed replicates per grid point")
		samples      = fs.Int("samples", 0, "random-sample this many grid points instead of the full grid (0 = full grid)")
		sampleSeed   = fs.Int64("sample-seed", 1, "seed for -samples point selection")
		storeDir     = fs.String("store", "", "result store directory (required: the fabric's shared state)")
		addr         = fs.String("addr", "127.0.0.1:9190", "TCP listen address for the coordinator API")
		leaseTTL     = fs.Duration("lease-ttl", 0, "lease TTL; a worker silent this long forfeits its cells (0 = default 60s)")
		leaseBatch   = fs.Int("lease-batch", 0, "max cells per lease response (0 = default 64)")
		compactEvery = fs.Int("compact-every", 0, "fold loose cells into an indexed segment every N settled cells (0 = only on exit)")
		noCompact    = fs.Bool("no-compact", false, "skip store compaction on exit")
		linger       = fs.Duration("linger", 2*time.Second, "keep answering after completion so polling workers hear 'complete'")
		csvOut       = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut      = fs.Bool("json", false, "emit JSON instead of aligned tables")

		sf = addSpecFlags(fs)
	)
	fs.Var(&axes, "axis", "sweep axis field=v1,v2,... (repeatable; fields: "+
		strings.Join(optsync.AxisFields(), " ")+")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvOut && *jsonOut {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}
	if len(axes) == 0 {
		return fmt.Errorf("serve needs at least one -axis (fields: %s)",
			strings.Join(optsync.AxisFields(), " "))
	}
	if *storeDir == "" {
		return fmt.Errorf("serve needs -store: the store is how settled work survives restarts")
	}

	base, err := sf.spec()
	if err != nil {
		return err
	}
	parsedAxes, err := parseAxes(axes)
	if err != nil {
		return err
	}
	c := optsync.Campaign{
		Name:    *name,
		Base:    base,
		Axes:    parsedAxes,
		Seeds:   *seeds,
		Samples: *samples, SampleSeed: *sampleSeed,
		Finish: deriveSpecDefaults(fs, parsedAxes),
	}
	store, err := optsync.OpenStore(*storeDir)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := optsync.ServeCampaign(ctx, c, store, optsync.FabricServeOptions{
		ServerOptions: optsync.FabricServerOptions{
			LeaseTTL:     *leaseTTL,
			LeaseBatch:   *leaseBatch,
			CompactEvery: *compactEvery,
		},
		Addr: *addr,
		Ready: func(bound string) {
			fmt.Fprintf(os.Stderr, "serving campaign on http://%s — attach workers with: syncsim work -coordinator http://%s\n",
				bound, bound)
		},
		Linger:        *linger,
		CompactOnExit: !*noCompact,
	})
	if errors.Is(err, context.Canceled) {
		// Graceful interrupt: the settled prefix is durable; tell the
		// operator how to continue rather than failing the process.
		fmt.Fprintf(os.Stderr, "interrupted: %d/%d cells settled in %s; re-run serve (or `syncsim campaign -store %s`) to finish\n",
			len(report.Cells), report.Total, *storeDir, *storeDir)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, report.Summary())
	switch {
	case *jsonOut:
		return json.NewEncoder(os.Stdout).Encode(report)
	case *csvOut:
		_, err := fmt.Print(report.Table().CSV())
		return err
	default:
		_, err := fmt.Println(report.Table().Render())
		return err
	}
}

// runWorkCmd implements "syncsim work": a stateless worker that pulls
// cell leases from a coordinator, simulates them locally, and reports
// results back with retry and backoff. It can be killed and restarted
// freely — the only state it holds is a lease the coordinator reclaims.
func runWorkCmd(args []string) error {
	fs := flag.NewFlagSet("syncsim work", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (required), e.g. http://127.0.0.1:9190")
		name        = fs.String("name", "", "worker name in coordinator logs (default host-pid)")
		batch       = fs.Int("batch", 0, "cells per lease (0 = default 16)")
		workers     = fs.Int("workers", 0, "local simulation pool size (0 = all cores)")
		poll        = fs.Duration("poll", 0, "poll interval while other workers hold all pending cells (0 = default 200ms)")
		backoff     = fs.Duration("backoff", 0, "base RPC retry backoff, doubling with jitter (0 = default 100ms)")
		backoffMax  = fs.Duration("backoff-max", 0, "retry backoff ceiling (0 = default 5s)")
		attempts    = fs.Int("attempts", 0, "RPC attempts before giving the coordinator up (0 = default 8)")
		quiet       = fs.Bool("quiet", false, "suppress per-batch progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *coordinator == "" {
		return fmt.Errorf("work needs -coordinator URL (printed by `syncsim serve` on startup)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := optsync.FabricWorkerOptions{
		Name:         *name,
		Batch:        *batch,
		Workers:      *workers,
		PollInterval: *poll,
		BackoffBase:  *backoff,
		BackoffMax:   *backoffMax,
		MaxAttempts:  *attempts,
	}
	if !*quiet {
		opts.Progress = func(executed, done, total int) {
			fmt.Fprintf(os.Stderr, "worker: %d cells executed here; campaign %d/%d settled\n",
				executed, done, total)
		}
	}
	stats, err := optsync.RunWorker(ctx, *coordinator, opts)
	if errors.Is(err, context.Canceled) {
		// Graceful interrupt: any finished batch was already reported
		// under the grace window; unfinished leases simply expire.
		fmt.Fprintf(os.Stderr, "interrupted: %d cells executed, %d leases, %d retries\n",
			stats.Executed, stats.Leases, stats.Retries)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign complete: %d cells executed here, %d leases, %d retries\n",
		stats.Executed, stats.Leases, stats.Retries)
	return nil
}
