package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"optsync"
)

// traceCollectors is the aggregate set the trace subcommand replays into
// — the bounded-memory collectors, in presentation order. Replaying a
// run's trace through them reproduces the live run's aggregates exactly
// (all trace formats round-trip float64 bit-for-bit).
func traceCollectors() []optsync.Collector {
	return []optsync.Collector{
		optsync.NewSkewCollector(),
		optsync.NewSpreadCollector(),
		optsync.NewMsgCollector(),
		optsync.NewReintegrationCollector(),
	}
}

// replayStream feeds every event of a recorded stream (row trace or
// lake, auto-detected from the leading bytes) through the probes in
// recorded order. Lakes need random access to their footer index, so a
// lake arriving on a pipe is buffered in memory first.
func replayStream(r io.Reader, probes ...optsync.Probe) (int, error) {
	br := newSniffReader(r)
	if br.isLake() {
		data, err := io.ReadAll(br)
		if err != nil {
			return 0, err
		}
		l, err := optsync.OpenLakeBytes(data)
		if err != nil {
			return 0, err
		}
		defer l.Close()
		return l.Replay(optsync.LakeQuery{}, probes...)
	}
	return optsync.ReplayTrace(br, probes...)
}

// sniffReader wraps a stream with an 8-byte lookahead for format
// routing.
type sniffReader struct {
	head []byte
	r    io.Reader
}

func newSniffReader(r io.Reader) *sniffReader {
	head := make([]byte, len(optsync.LakeMagic))
	n, _ := io.ReadFull(r, head)
	return &sniffReader{head: head[:n], r: r}
}

func (s *sniffReader) isLake() bool { return bytes.Equal(s.head, optsync.LakeMagic[:]) }

func (s *sniffReader) Read(p []byte) (int, error) {
	if len(s.head) > 0 {
		n := copy(p, s.head)
		s.head = s.head[n:]
		return n, nil
	}
	return s.r.Read(p)
}

// replayAggregates replays a trace stream through fresh collectors and
// returns them with the replayed event count.
func replayAggregates(r io.Reader) ([]optsync.Collector, int, error) {
	cols := traceCollectors()
	probes := make([]optsync.Probe, len(cols))
	for i, c := range cols {
		probes[i] = c
	}
	n, err := replayStream(r, probes...)
	return cols, n, err
}

// renderAggregates renders collector aggregates as one aligned table —
// shared by `syncsim trace` and the round-trip tests that compare live
// and replayed output byte for byte.
func renderAggregates(cols []optsync.Collector, events int) string {
	t := optsync.NewTable("trace aggregates", "collector", "stat", "value")
	for _, c := range cols {
		for _, s := range c.Aggregate() {
			t.AddRow(c.Name(), s.Key, optsync.F(s.Value))
		}
	}
	t.AddNote("%d events replayed", events)
	return t.Render()
}

// traceJSON is the machine-readable projection of replayed aggregates.
type traceJSON struct {
	Events     int                       `json:"events"`
	Collectors map[string][]optsync.Stat `json:"collectors"`
}

// runTraceCmd implements `syncsim trace -in FILE [-json]` (replay a
// recorded stream through the built-in collectors and print their
// aggregates) and `syncsim trace -in FILE -out FILE` (convert between
// the three trace encodings, output format picked by extension).
func runTraceCmd(args []string) error {
	fs := flag.NewFlagSet("syncsim trace", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "trace file to read (jsonl, binary, or lake, auto-detected; - for stdin)")
		out     = fs.String("out", "", "convert to this file instead of replaying aggregates (.lake = columnar lake, .bin/.trace = binary frames, else JSONL)")
		jsonOut = fs.Bool("json", false, "emit JSON instead of an aligned table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("trace: -in FILE is required (record one with: syncsim -run ... -trace FILE)")
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	if *out != "" {
		return convertTrace(r, *out)
	}
	cols, n, err := replayAggregates(r)
	if err != nil {
		return err
	}
	if *jsonOut {
		o := traceJSON{Events: n, Collectors: make(map[string][]optsync.Stat, len(cols))}
		for _, c := range cols {
			o.Collectors[c.Name()] = c.Aggregate()
		}
		enc := json.NewEncoder(os.Stdout)
		return enc.Encode(o)
	}
	fmt.Println(renderAggregates(cols, n))
	return nil
}

// convertTrace streams every event of r into a fresh sink at path. The
// conversion is lossless: events pass through as values, so a round trip
// between any two encodings reproduces the stream bit-for-bit.
func convertTrace(r io.Reader, path string) error {
	sink, f, err := traceSinkFor(path)
	if err != nil {
		return err
	}
	n, err := replayStream(r, sink)
	if err != nil {
		f.Close()
		return err
	}
	if err := sink.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("converted %d events to %s\n", n, path)
	return nil
}

// traceSink is what both trace-writer families look like from the
// conversion and recording paths: a probe that buffers, counts, and
// finalizes on Flush.
type traceSink interface {
	optsync.Probe
	Flush() error
	Events() uint64
}

// traceSinkFor creates path and picks the encoding by extension: .lake
// for the columnar lake container, .bin / .trace for compact binary
// frames, anything else JSON Lines.
func traceSinkFor(path string) (traceSink, *os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	switch {
	case strings.HasSuffix(path, ".lake"):
		return optsync.NewLakeWriter(f), f, nil
	case strings.HasSuffix(path, ".bin"), strings.HasSuffix(path, ".trace"):
		return optsync.NewTraceWriter(f, optsync.TraceBinary), f, nil
	}
	return optsync.NewTraceWriter(f, optsync.TraceJSONL), f, nil
}

// traceOption wraps a sink in the matching recording option for Run.
func traceOption(sink traceSink) optsync.Option {
	if w, ok := sink.(*optsync.LakeWriter); ok {
		return optsync.WithLakeTrace(w)
	}
	return optsync.WithTrace(sink.(*optsync.TraceWriter))
}
