package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"optsync"
)

// traceCollectors is the aggregate set the trace subcommand replays into
// — the bounded-memory collectors, in presentation order. Replaying a
// run's trace through them reproduces the live run's aggregates exactly
// (both trace formats round-trip float64 bit-for-bit).
func traceCollectors() []optsync.Collector {
	return []optsync.Collector{
		optsync.NewSkewCollector(),
		optsync.NewSpreadCollector(),
		optsync.NewMsgCollector(),
		optsync.NewReintegrationCollector(),
	}
}

// replayAggregates replays a trace stream through fresh collectors and
// returns them with the replayed event count.
func replayAggregates(r io.Reader) ([]optsync.Collector, int, error) {
	cols := traceCollectors()
	probes := make([]optsync.Probe, len(cols))
	for i, c := range cols {
		probes[i] = c
	}
	n, err := optsync.ReplayTrace(r, probes...)
	return cols, n, err
}

// renderAggregates renders collector aggregates as one aligned table —
// shared by `syncsim trace` and the round-trip tests that compare live
// and replayed output byte for byte.
func renderAggregates(cols []optsync.Collector, events int) string {
	t := optsync.NewTable("trace aggregates", "collector", "stat", "value")
	for _, c := range cols {
		for _, s := range c.Aggregate() {
			t.AddRow(c.Name(), s.Key, optsync.F(s.Value))
		}
	}
	t.AddNote("%d events replayed", events)
	return t.Render()
}

// traceJSON is the machine-readable projection of replayed aggregates.
type traceJSON struct {
	Events     int                       `json:"events"`
	Collectors map[string][]optsync.Stat `json:"collectors"`
}

// runTraceCmd implements `syncsim trace -in FILE [-json]`: replay a
// trace recorded with `-run ... -trace FILE` back through the built-in
// collectors and print their aggregates.
func runTraceCmd(args []string) error {
	fs := flag.NewFlagSet("syncsim trace", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "trace file to replay (jsonl or binary, auto-detected; - for stdin)")
		jsonOut = fs.Bool("json", false, "emit JSON instead of an aligned table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("trace: -in FILE is required (record one with: syncsim -run ... -trace FILE)")
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	cols, n, err := replayAggregates(r)
	if err != nil {
		return err
	}
	if *jsonOut {
		out := traceJSON{Events: n, Collectors: make(map[string][]optsync.Stat, len(cols))}
		for _, c := range cols {
			out.Collectors[c.Name()] = c.Aggregate()
		}
		enc := json.NewEncoder(os.Stdout)
		return enc.Encode(out)
	}
	fmt.Println(renderAggregates(cols, n))
	return nil
}

// traceWriterFor opens path and picks the framing by extension: .bin /
// .trace for the compact binary format, anything else JSON Lines.
func traceWriterFor(path string) (*optsync.TraceWriter, *os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	format := optsync.TraceJSONL
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".trace") {
		format = optsync.TraceBinary
	}
	return optsync.NewTraceWriter(f, format), f, nil
}
