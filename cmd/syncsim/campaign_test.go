package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// campaignArgs builds a small, fast grid: 2 faulty counts x 2 seeds.
func campaignArgs(store string, extra ...string) []string {
	args := []string{
		"campaign", "-n", "5", "-horizon", "4",
		"-axis", "faulty=0,1", "-seeds", "2",
	}
	if store != "" {
		args = append(args, "-store", store)
	}
	return append(args, extra...)
}

func TestCampaignCLIGridAndResume(t *testing.T) {
	store := t.TempDir() + "/store"
	first, err := capture(t, func() error { return run(campaignArgs(store, "-csv")) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(first, "group,cells,pass_rate,skew_mean") {
		t.Fatalf("unexpected CSV header:\n%s", first)
	}
	if lines := strings.Count(strings.TrimSpace(first), "\n"); lines != 2 {
		t.Fatalf("want header + 2 group rows, got:\n%s", first)
	}
	// Second pass serves from the store and renders byte-identical
	// aggregates.
	second, err := capture(t, func() error { return run(campaignArgs(store, "-csv")) })
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("resumed aggregates drifted:\n%s\nvs\n%s", first, second)
	}
}

func TestCampaignCLIJSONReport(t *testing.T) {
	out, err := capture(t, func() error { return run(campaignArgs("", "-json")) })
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Total    int `json:"total"`
		Executed int `json:"executed"`
		Groups   []struct {
			Key string `json:"key"`
		} `json:"groups"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("bad JSON %q: %v", out, err)
	}
	if report.Total != 4 || report.Executed != 4 || len(report.Groups) != 2 {
		t.Fatalf("report = %+v", report)
	}
}

func TestCampaignCLICells(t *testing.T) {
	out, err := capture(t, func() error { return run(campaignArgs("", "-cells", "-json")) })
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 per-cell JSON lines, got %d:\n%s", len(lines), out)
	}
	var rec struct {
		Name string `json:"name"`
		Seed int64  `json:"seed"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Name, "faulty=0") || rec.Seed != 2 {
		t.Fatalf("cell record = %+v", rec)
	}
}

// A campaign cell must simulate exactly what the equivalent single -run
// invocation simulates: derived conventions (alpha, initial skew, fault
// bounds) recompute per cell from the swept values, they are not frozen
// from the base flags.
func TestCampaignCellMatchesSingleRun(t *testing.T) {
	campOut, err := capture(t, func() error {
		return run([]string{"campaign", "-horizon", "8", "-axis", "dmax=0.018", "-cells", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	runOut, err := capture(t, func() error {
		return run([]string{"-run", "-horizon", "8", "-dmax", "0.018", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var cell, single map[string]any
	if err := json.Unmarshal([]byte(campOut), &cell); err != nil {
		t.Fatalf("bad campaign record %q: %v", campOut, err)
	}
	if err := json.Unmarshal([]byte(runOut), &single); err != nil {
		t.Fatalf("bad run record %q: %v", runOut, err)
	}
	delete(cell, "name") // the campaign labels its cells; -run does not
	delete(single, "name")
	if !reflect.DeepEqual(cell, single) {
		t.Fatalf("campaign cell diverged from -run on the same point:\n%v\nvs\n%v", cell, single)
	}
}

// Sweeping n re-derives the fault bound per cell (unless -f pins it).
func TestCampaignCLIRederivesFaultBound(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"campaign", "-horizon", "4", "-axis", "n=4,7", "-cells", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var fs []float64
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var rec struct {
			F float64 `json:"f"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		fs = append(fs, rec.F)
	}
	if len(fs) != 2 || fs[0] != 1 || fs[1] != 3 {
		t.Fatalf("fault bounds not re-derived per n: %v (want [1 3])", fs)
	}
}

func TestCampaignCLISearch(t *testing.T) {
	out, err := capture(t, func() error {
		return run(campaignArgs("", "-search", "faulty"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "threshold search on faulty") ||
		!strings.Contains(out, "last_pass") {
		t.Fatalf("search output unexpected:\n%s", out)
	}
}

func TestCampaignCLIErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"no axis":          {"campaign", "-n", "5"},
		"malformed axis":   {"campaign", "-axis", "faulty"},
		"unknown field":    {"campaign", "-axis", "warp=1,2"},
		"csv+json":         campaignArgs("", "-csv", "-json"),
		"cells in search":  campaignArgs("", "-search", "faulty", "-cells"),
		"search off-axis":  campaignArgs("", "-search", "dmax"),
		"bad axis value":   {"campaign", "-axis", "faulty=x,y"},
		"invalid topology": campaignArgs("", "-topology", "wan:"),
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}
