// Command syncsimlint runs the repo's project-specific static analysis
// suite (internal/lint) over the module: determinism rules for the
// simulation core (detrand), probe-emission guard discipline
// (probeguard), must-check results (mustcheck), and allocation rules for
// //syncsim:hotpath functions (hotpath). It exits non-zero when any
// finding survives the //syncsim:allowlist directives.
//
// Usage:
//
//	syncsimlint [packages]          # default ./...
//	syncsimlint -hotpath-ranges ./...
//
// -hotpath-ranges prints "file start end name" for every annotated
// function instead of linting; scripts/check_hotpath_allocs.sh feeds
// those ranges to the compiler's escape analysis.
package main

import (
	"flag"
	"fmt"
	"os"

	"optsync/internal/lint"
)

func main() {
	hotRanges := flag.Bool("hotpath-ranges", false, "print //syncsim:hotpath function line ranges and exit")
	list := flag.Bool("analyzers", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	ld, err := lint.NewLoaderHere(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "syncsimlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()

	if *hotRanges {
		pkgs, err := ld.Load(patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "syncsimlint:", err)
			os.Exit(2)
		}
		for _, r := range lint.HotRanges(ld, pkgs) {
			fmt.Printf("%s %d %d %s\n", r.File, r.Start, r.End, r.Name)
		}
		return
	}

	diags, err := lint.Run(ld, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syncsimlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "syncsimlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
