package optsync

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"optsync/internal/core/bounds"
)

func testParams(t testing.TB, n int, v Variant) Params {
	t.Helper()
	p := Params{
		N: n, F: v.MaxFaults(n), Variant: v,
		Rho:  Rho(1e-4),
		DMin: 0.002, DMax: 0.01,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func testSpecs(t testing.TB, k int) []Spec {
	p := testParams(t, 5, Auth)
	specs := make([]Spec, k)
	for i := range specs {
		specs[i] = Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F, Attack: AttackSilent,
			Horizon: 8, Seed: int64(i + 1),
		}
	}
	return specs
}

func TestRunUnknownNamesError(t *testing.T) {
	p := testParams(t, 3, Auth)
	if _, err := Run(context.Background(), Spec{Algo: "nope", Params: p, Seed: 1}); err == nil {
		t.Fatal("unknown algorithm accepted")
	} else if !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("error does not name the offender: %v", err)
	}
	if _, err := Run(context.Background(), Spec{
		Algo: AlgoAuth, Params: p, FaultyCount: 1, Attack: "nope", Seed: 1,
	}); err == nil {
		t.Fatal("unknown attack accepted")
	}
	// Attack/algorithm mismatches are errors too, not panics.
	if _, err := Run(context.Background(), Spec{
		Algo: AlgoAuth, Params: p, FaultyCount: 1, Attack: AttackBias, Seed: 1,
	}); err == nil {
		t.Fatal("bias attack on auth accepted")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	builder := func(Spec) (Protocol, error) { return nil, nil }
	attack := func(Spec, AttackEnv) (Protocol, error) { return nil, nil }
	mustPanic("dup protocol", func() { RegisterProtocol(AlgoAuth, builder) })
	mustPanic("dup attack", func() { RegisterAttack(AttackSilent, attack) })
	mustPanic("empty protocol name", func() { RegisterProtocol("", builder) })
	mustPanic("empty attack name", func() { RegisterAttack("", attack) })
	mustPanic("nil protocol builder", func() { RegisterProtocol("x-nil", nil) })
	mustPanic("nil attack builder", func() { RegisterAttack("x-nil", nil) })
}

func TestRegistryListsBuiltins(t *testing.T) {
	protos := Protocols()
	for _, want := range []Algorithm{AlgoAuth, AlgoPrim, AlgoCNV, AlgoFTM} {
		found := false
		for _, got := range protos {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("protocol %q not registered (have %v)", want, protos)
		}
	}
	attacks := Attacks()
	for _, want := range []Attack{AttackNone, AttackSilent, AttackCrashMid,
		AttackRush, AttackBias, AttackEquivocate, AttackSelective} {
		found := false
		for _, got := range attacks {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("attack %q not registered (have %v)", want, attacks)
		}
	}
}

// TestRegisterCustomProtocol registers a protocol through the public
// extension point and runs it end to end.
func TestRegisterCustomProtocol(t *testing.T) {
	RegisterProtocol("test-wrapped-auth", func(spec Spec) (Protocol, error) {
		inner := spec
		inner.Algo = AlgoAuth
		return NewProtocol(inner)
	})
	p := testParams(t, 5, Auth)
	res, err := Run(context.Background(), Spec{
		Algo: "test-wrapped-auth", Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		Horizon: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteRounds == 0 {
		t.Fatal("custom-registered protocol completed no rounds")
	}
}

// TestRunBatchDeterministicAcrossWorkers is the core parallelism
// guarantee: same seeds, 1 worker vs 8 workers, byte-identical results
// and byte-identical sink output.
func TestRunBatchDeterministicAcrossWorkers(t *testing.T) {
	specs := testSpecs(t, 10)

	runWith := func(workers int) ([]byte, []byte) {
		var csvBuf bytes.Buffer
		results, err := RunBatch(context.Background(), specs,
			WithWorkers(workers), WithSink(NewCSVSink(&csvBuf)))
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		return blob, csvBuf.Bytes()
	}

	serial, serialCSV := runWith(1)
	parallel, parallelCSV := runWith(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("results differ between 1 and 8 workers")
	}
	if !bytes.Equal(serialCSV, parallelCSV) {
		t.Fatal("sink output differs between 1 and 8 workers")
	}
}

func TestRunBatchOrderAndSeeds(t *testing.T) {
	specs := testSpecs(t, 3)
	results, err := RunBatch(context.Background(), specs,
		WithWorkers(4), WithSeeds(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	for i, res := range results {
		wantSeed := specs[i/2].Seed + int64(i%2)
		if res.Spec.Seed != wantSeed {
			t.Fatalf("result %d has seed %d, want %d", i, res.Spec.Seed, wantSeed)
		}
	}
}

func TestRunBatchProgress(t *testing.T) {
	specs := testSpecs(t, 4)
	var events []ProgressEvent
	_, err := RunBatch(context.Background(), specs,
		WithWorkers(2),
		WithProgress(func(ev ProgressEvent) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(specs) {
		t.Fatalf("got %d progress events, want %d", len(events), len(specs))
	}
	for i, ev := range events {
		if ev.Completed != i+1 || ev.Total != len(specs) {
			t.Fatalf("event %d: %d/%d", i, ev.Completed, ev.Total)
		}
	}
}

func TestRunBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBatch(ctx, testSpecs(t, 4)); err == nil {
		t.Fatal("cancelled batch reported success")
	}
	if _, err := Run(ctx, testSpecs(t, 1)[0]); err == nil {
		t.Fatal("cancelled run reported success")
	}
}

// failingSink errors on its first Write.
type failingSink struct{ writes int }

func (s *failingSink) Write(Result) error {
	s.writes++
	return errSinkBroken
}
func (s *failingSink) Flush() error { return nil }

var errSinkBroken = errors.New("sink broken")

func TestRunBatchSinkErrorCancelsRemainingRuns(t *testing.T) {
	specs := testSpecs(t, 8)
	var completed int
	_, err := RunBatch(context.Background(), specs,
		WithWorkers(1),
		WithSink(&failingSink{}),
		WithProgress(func(ProgressEvent) { completed++ }))
	if !errors.Is(err, errSinkBroken) {
		t.Fatalf("got %v, want the sink error", err)
	}
	if completed == len(specs) {
		t.Fatal("sink failure on the first result did not cancel the remaining runs")
	}
}

func TestRunFlushesHealthySinksOnEmitError(t *testing.T) {
	var csvBuf bytes.Buffer
	healthy := NewCSVSink(&csvBuf)
	_, err := Run(context.Background(), testSpecs(t, 1)[0],
		WithSink(healthy), WithSink(&failingSink{}))
	if !errors.Is(err, errSinkBroken) {
		t.Fatalf("got %v, want the sink error", err)
	}
	if csvBuf.Len() == 0 {
		t.Fatal("healthy sink's buffered output was lost on another sink's error")
	}
}

func TestRunBatchUnknownSpecFails(t *testing.T) {
	specs := testSpecs(t, 3)
	specs[1].Algo = "nope"
	if _, err := RunBatch(context.Background(), specs, WithWorkers(2)); err == nil {
		t.Fatal("batch with malformed spec reported success")
	}
}

func TestSpecOptions(t *testing.T) {
	spec := testSpecs(t, 1)[0]
	res, err := Run(context.Background(), spec,
		WithSeed(42), WithHorizon(6), WithKeepSeries())
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.Seed != 42 || res.Spec.Horizon != 6 {
		t.Fatalf("options not applied: %+v", res.Spec)
	}
	if len(res.Series) == 0 || len(res.Pulses) == 0 {
		t.Fatal("KeepSeries retained no series/pulses")
	}
}

func TestSinks(t *testing.T) {
	specs := testSpecs(t, 2)
	var tbl, csvBuf, jsonBuf bytes.Buffer
	_, err := RunBatch(context.Background(), specs,
		WithSink(NewTableSink(&tbl)),
		WithSink(NewCSVSink(&csvBuf)),
		WithSink(NewJSONSink(&jsonBuf)))
	if err != nil {
		t.Fatal(err)
	}

	if !strings.Contains(tbl.String(), "max_skew_s") || !strings.Contains(tbl.String(), "st-auth") {
		t.Fatalf("table sink output malformed:\n%s", tbl.String())
	}

	rows, err := csv.NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 results
		t.Fatalf("csv has %d rows, want 3", len(rows))
	}
	if rows[0][1] != "algo" || rows[1][1] != "st-auth" {
		t.Fatalf("csv malformed: %v", rows[:2])
	}

	dec := json.NewDecoder(&jsonBuf)
	var decoded int
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		if rec["algo"] != "st-auth" || rec["within_skew"] != true {
			t.Fatalf("json record malformed: %v", rec)
		}
		decoded++
	}
	if decoded != 2 {
		t.Fatalf("json sink wrote %d records, want 2", decoded)
	}
}

// TestPublicAPIMatchesHarness pins the facade to the engine: a run through
// the public API equals the classic harness path on the same spec.
func TestPublicAPIMatchesHarness(t *testing.T) {
	spec := testSpecs(t, 1)[0]
	got, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	p := spec.Params
	if got.Spec.Params.N != p.N || got.SkewBound != p.DmaxWithStart() {
		t.Fatalf("facade drift: %+v", got)
	}
	if !got.WithinSkew || got.CompleteRounds == 0 {
		t.Fatalf("healthy run misreported: %+v", got)
	}
	if _, ok := interface{}(p).(bounds.Params); !ok {
		t.Fatal("Params alias broken")
	}
}
