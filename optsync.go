// Package optsync is the public, composable experiment API of the
// Srikanth-Toueg "Optimal Clock Synchronization" (PODC 1985)
// reproduction.
//
// It exposes four things:
//
//   - a registry: RegisterProtocol / RegisterAttack make algorithms and
//     faulty-node behaviours pluggable constructors, resolved by name
//     from a Spec. The built-ins (st-auth, st-primitive, cnv, ftm; none,
//     silent, crash-mid, rush, bias, equivocate, selective)
//     self-register.
//   - a functional-options runner: Run executes one deterministic
//     simulation, RunBatch fans independent specs out over a bounded
//     worker pool (each run is single-threaded, so batch speedup is
//     near-linear) with WithWorkers, WithSeeds, WithProgress, and
//     context cancellation.
//   - structured result sinks: Table, CSV, and JSON implementations of
//     the Sink interface stream Results to machine-readable output.
//   - a typed observation stream: WithProbe / WithCollector / WithTrace
//     subscribe probes, bounded-memory streaming collectors, and trace
//     writers to every event of a run (messages, pulses, resyncs, boots,
//     partition churn, skew samples) with zero hot-path allocation;
//     ReplayTrace feeds a recorded trace back through collectors to
//     bit-identical aggregates (see probe.go).
//
// Quick example:
//
//	params := optsync.Params{
//		N: 5, F: 2, Variant: optsync.Auth,
//		Rho:  optsync.Rho(1e-4),
//		DMin: 0.002, DMax: 0.010,
//		Period: 1.0, InitialSkew: 0.005,
//	}.WithDefaults()
//	res, err := optsync.Run(context.Background(), optsync.Spec{
//		Algo: optsync.AlgoAuth, Params: params,
//		FaultyCount: params.F, Attack: optsync.AttackSilent,
//		Seed: 1,
//	})
package optsync

import (
	"context"
	"errors"

	"optsync/internal/adversary"
	"optsync/internal/clock"
	"optsync/internal/core/bounds"
	"optsync/internal/harness"
	"optsync/internal/metrics"
	"optsync/internal/network"
	"optsync/internal/node"
	"optsync/internal/probe"
)

// The experiment vocabulary, re-exported as aliases so values flow
// between this package and extension code without conversion.
type (
	// Spec fully describes one run; zero fields take sensible defaults.
	Spec = harness.Spec
	// Result aggregates everything measured in one run.
	Result = harness.Result
	// Algorithm names a registered protocol.
	Algorithm = harness.Algorithm
	// Attack names a registered faulty-node behaviour.
	Attack = harness.Attack
	// Params is the analytic parameterization (n, f, drift, delays, P).
	Params = bounds.Params
	// Variant selects the resilience regime (Auth: n > 2f, Primitive: n > 3f).
	Variant = bounds.Variant
	// Sample is one skew observation of a Result series.
	Sample = metrics.Sample
	// Table is a renderable result table (also what scenarios produce).
	Table = harness.Table
	// Scenario is a registered experiment of the reproduction suite.
	Scenario = harness.Scenario

	// Protocol is the behaviour of one simulated process.
	Protocol = node.Protocol
	// Env is the world a Protocol acts through (clocks, network, crypto).
	Env = node.Env
	// ID identifies a process.
	ID = node.ID
	// Message is the typed network envelope protocols exchange: a Kind
	// discriminator, inline scalars (Src/Round/Value), and an optional
	// structured Payload. Scalar-only messages cross the simulated
	// network without allocating.
	Message = node.Message
	// Kind discriminates message envelopes; allocate kinds for custom
	// protocols with NewKind.
	Kind = network.Kind
	// PulseRecord logs one accepted resynchronization round at one node.
	PulseRecord = node.PulseRecord

	// Topology decides which directed links exist at any virtual instant;
	// Spec.Topology selects one by registered name ("mesh", "wan:4",
	// "ring:6", or anything added via RegisterTopology).
	Topology = network.Topology
	// TopologyBuilder constructs a Topology from a "name:arg" spec.
	TopologyBuilder = harness.TopologyBuilder
	// Partition is one scheduled partition/heal window of Spec.Partitions.
	Partition = harness.Partition

	// ProtocolBuilder constructs a correct process's protocol for a spec.
	ProtocolBuilder = harness.ProtocolBuilder
	// AttackBuilder constructs a faulty process's protocol for a spec.
	AttackBuilder = harness.AttackBuilder
	// AttackEnv is the per-node wiring handed to an AttackBuilder.
	AttackEnv = harness.AttackEnv
	// ProtocolOption customizes a protocol registration.
	ProtocolOption = harness.ProtocolOption
	// EnvelopeFunc supplies protocol-specific accuracy bounds.
	EnvelopeFunc = harness.EnvelopeFunc
	// Collusion is the shared coordination state of a faulty coalition.
	Collusion = adversary.Collusion
)

// Rho is the hardware drift bound: clock rates stay within
// [1/(1+rho), 1+rho]. optsync.Rho(1e-4) converts from a float.
type Rho = clock.Rho

// Built-in algorithms and attacks.
const (
	AlgoAuth = harness.AlgoAuth // authenticated ST algorithm
	AlgoPrim = harness.AlgoPrim // broadcast-primitive ST algorithm
	AlgoCNV  = harness.AlgoCNV  // interactive convergence baseline
	AlgoFTM  = harness.AlgoFTM  // fault-tolerant midpoint baseline

	AttackNone       = harness.AttackNone
	AttackSilent     = harness.AttackSilent
	AttackCrashMid   = harness.AttackCrashMid
	AttackRush       = harness.AttackRush
	AttackBias       = harness.AttackBias
	AttackEquivocate = harness.AttackEquivocate
	AttackSelective  = harness.AttackSelective

	// Auth and Primitive are the two resilience variants of Params.
	Auth      = bounds.Auth
	Primitive = bounds.Primitive
)

// RegisterProtocol makes an algorithm constructible by name through a
// Spec, alongside the built-ins. Use WithEnvelope to attach
// protocol-specific accuracy bounds. It panics on empty or duplicate
// names — registration belongs in package init.
func RegisterProtocol(name Algorithm, build ProtocolBuilder, opts ...ProtocolOption) {
	harness.RegisterProtocol(name, build, opts...)
}

// RegisterAttack makes a faulty-node behaviour constructible by name
// through a Spec. Same contract as RegisterProtocol.
func RegisterAttack(name Attack, build AttackBuilder) {
	harness.RegisterAttack(name, build)
}

// RegisterTopology makes a connectivity shape constructible by name
// through Spec.Topology, alongside the built-ins ("mesh", "wan:R",
// "ring:D"). Parameterized names use a colon: Spec.Topology "wan:4"
// resolves the builder registered under "wan" with arg "4". Same
// contract as RegisterProtocol.
func RegisterTopology(name string, build TopologyBuilder) {
	harness.RegisterTopology(name, build)
}

// Topologies returns the registered topology names, sorted.
func Topologies() []string { return harness.Topologies() }

// ParsePartition parses one "at:heal:leftSize" partition window (heal 0
// = never heals), the textual form used by the syncsim CLI and the
// campaign "partitions" axis.
func ParsePartition(s string) (Partition, error) { return harness.ParsePartition(s) }

// NewKind registers a message kind for a custom protocol under a
// diagnostic name and returns its id. Call from package init, alongside
// RegisterProtocol.
func NewKind(name string) Kind { return network.NewKind(name) }

// Raw wraps an arbitrary payload in an untyped (KindRaw) envelope — the
// escape hatch for quick experiments; real protocols allocate kinds.
func Raw(payload any) Message { return network.Raw(payload) }

// WithEnvelope attaches accuracy bounds to a protocol registration.
func WithEnvelope(fn EnvelopeFunc) ProtocolOption { return harness.WithEnvelope(fn) }

// Protocols returns the registered algorithm names, sorted.
func Protocols() []Algorithm { return harness.Protocols() }

// Attacks returns the registered attack names, sorted.
func Attacks() []Attack { return harness.Attacks() }

// NewProtocol builds the correct-node protocol for a spec via the
// registry; attack builders that wrap correct behaviour use it.
func NewProtocol(spec Spec) (Protocol, error) { return harness.NewProtocol(spec) }

// SetDefaultWorkers sets the worker-pool size used when RunBatch is not
// given WithWorkers, and by the reproduction scenario generators
// (Scenarios). n <= 0 restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) { harness.SetWorkers(n) }

// Scenarios returns the full reproduction experiment suite (the tables
// and figures of EXPERIMENTS.md) in presentation order.
func Scenarios() []Scenario { return harness.Scenarios() }

// FindScenario returns the scenario with the given id, or false.
func FindScenario(id string) (Scenario, bool) { return harness.FindScenario(id) }

// NewTable creates a renderable table with the given title and columns.
func NewTable(title string, columns ...string) *Table { return harness.NewTable(title, columns...) }

// F formats a float compactly for table cells.
func F(v float64) string { return harness.F(v) }

// FmtBool renders pass/fail cells ("ok" / "VIOLATED").
func FmtBool(ok bool) string { return harness.FmtBool(ok) }

// Run executes one spec and returns its measurements. Options that only
// make sense for batches (WithWorkers, WithSeeds) are ignored; sink,
// probe, collector, trace, and progress options apply. Results are
// deterministic in the spec alone — probes observe without perturbing.
// Cancelling ctx aborts the simulation and returns ctx.Err().
func Run(ctx context.Context, spec Spec, opts ...Option) (Result, error) {
	cfg := newConfig(opts)
	cfg.applySpec(&spec)
	var attach harness.Observe
	if len(cfg.probes) > 0 {
		attach = func(_ Spec, bus *probe.Bus) {
			for _, r := range cfg.probes {
				bus.Attach(r.p, r.types...)
			}
		}
	}
	res, err := harness.RunObserved(ctx, spec, attach)
	if err != nil {
		return Result{}, err
	}
	if err := cfg.emit(res); err != nil {
		// Flush anyway: other sinks may have buffered output the write
		// error did not invalidate.
		_ = cfg.flushSinks()
		return res, err
	}
	if cfg.progress != nil {
		cfg.progress(ProgressEvent{Completed: 1, Total: 1, Index: 0, Result: res})
	}
	return res, cfg.flushSinks()
}

// RunBatch executes independent specs on a bounded worker pool and
// returns the results in input order. Every run is single-threaded and
// deterministic in its spec, so the returned slice — and anything
// streamed to sinks, which always receive results in input order — is
// byte-identical for any worker count.
//
// WithSeeds(k) expands each spec into k runs with consecutive seeds
// (results stay grouped per input spec). The first error cancels the
// remaining runs and is returned. Sinks registered with WithSink are
// flushed before returning.
func RunBatch(ctx context.Context, specs []Spec, opts ...Option) ([]Result, error) {
	cfg := newConfig(opts)

	runs := make([]Spec, 0, len(specs)*cfg.seeds)
	for _, spec := range specs {
		cfg.applySpec(&spec)
		for k := 0; k < cfg.seeds; k++ {
			run := spec
			run.Seed = spec.Seed + int64(k)
			runs = append(runs, run)
		}
	}

	// One probe set observes the whole batch: each probe is wrapped with
	// a single mutex so calls from concurrently executing runs are
	// serialized (events still interleave across runs — that is the
	// documented batch semantics of WithProbe/WithCollector/WithTrace).
	var attach harness.BatchObserve
	if len(cfg.probes) > 0 {
		shared := cfg.synchronizedProbes()
		attach = func(_ int, _ Spec, bus *probe.Bus) {
			for _, r := range shared {
				bus.Attach(r.p, r.types...)
			}
		}
	}

	// Stream to sinks strictly in input order: a finished run is held
	// until every earlier run has been written, so sink output does not
	// depend on scheduling. onResult runs under the batch lock. A sink
	// write error cancels the remaining runs — broken output should not
	// cost the rest of the batch.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		completed int
		emitted   int
		done      = make([]bool, len(runs))
		held      = make([]Result, len(runs))
		sinkErr   error
	)
	onResult := func(i int, res Result) {
		completed++
		if cfg.progress != nil {
			cfg.progress(ProgressEvent{
				Completed: completed, Total: len(runs),
				Index: i, Result: res,
			})
		}
		done[i], held[i] = true, res
		for emitted < len(runs) && done[emitted] && sinkErr == nil {
			if err := cfg.emit(held[emitted]); err != nil {
				sinkErr = err
				cancel()
				break
			}
			emitted++
		}
	}

	results, err := harness.RunBatchObserved(ctx, runs, cfg.workers, onResult, attach)
	if sinkErr != nil && (err == nil || errors.Is(err, context.Canceled)) {
		// The cancellation above surfaces as ctx.Err from the batch;
		// report the root cause instead (without masking a real run error).
		err = sinkErr
	}
	if ferr := cfg.flushSinks(); err == nil {
		err = ferr
	}
	return results, err
}
